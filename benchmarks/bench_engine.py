"""DES kernel events-per-second microbench (optimized vs naive kernel).

Not a paper figure: this measures the simulator itself, on the event
shapes the figure benchmarks are made of —

* ``timer_wheel`` — steady-state self-rescheduling ``call_later`` timers
  (the CPU scheduler's hot path); where the pooled/closure-free fast
  path engages fully;
* ``same_instant`` — many events per simulated instant (creation storms
  hammering the XenStore worker queue); exercises the batch drain;
* ``process_chain`` — generator processes yielding timeouts (toolstack
  phase code); dominated by generator resumes — the shape the
  trampoline/continuation-slot scheduler exists for;
* ``allof_fanout`` — wide ``AllOf`` joins (shell-pool prepare), covering
  spawn, completion and the incremental condition collection.

Each shape runs on the optimized kernel *and* on the frozen seed kernel
(``tests/reference_kernel.py``), so the reported speedup is a same-host
ratio — comparable across machines, unlike raw events/sec.  Every shape
listed in the committed ``benchmarks/baseline_engine.json``'s
``gated_metrics`` (timer_wheel, process_chain, allof_fanout) is asserted
against its ``required_speedup``; ``repro bench-gate`` applies the same
checks (plus an absolute tolerance band) in CI.
"""

import json
import sys

import pytest

from _support import REPO_ROOT, report, run_once, scaled

sys.path.insert(0, str(REPO_ROOT / "tests"))

from repro.sim import Simulator  # noqa: E402
from reference_kernel import Simulator as RefSimulator  # noqa: E402

BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline_engine.json"

TIMER_EVENTS = scaled(600_000, 120_000)
INSTANT_ROUNDS = scaled(1_500, 400)
INSTANT_WIDTH = 150
CHAIN_PROCESSES = scaled(4_000, 1_000)
CHAIN_STEPS = 30
FANOUT_GROUPS = scaled(40, 10)
FANOUT_WIDTH = 400

#: Best-of-N timing per (shape, kernel) to shave scheduler noise.  Five
#: rounds, not three: the gate checks a ratio of two best-of maxima, and
#: on a busy single-core CI box a load spike can poison three consecutive
#: runs of one kernel but rarely five.
ROUNDS = 5


def _throughput(fn, sim_cls) -> float:
    import gc
    import time
    fn(sim_cls())  # untimed warmup: the first run after a cold start is
    #                reliably the slowest (allocator growth, lazy imports)
    best = 0.0
    for _ in range(ROUNDS):
        gc.collect()  # start each round from a clean heap
        sim, started = sim_cls(), time.perf_counter()
        fn(sim)
        elapsed = time.perf_counter() - started
        best = max(best, sim.processed_events / elapsed)
    return best


def shape_timer_wheel(sim) -> None:
    fired = [0]

    def tick(slot):
        fired[0] += 1
        if fired[0] < TIMER_EVENTS:
            sim.call_later(float(1 + (slot & 7)), tick, slot)

    for i in range(64):
        sim.call_later(float(1 + (i & 7)), tick, i)
    sim.run()


def shape_same_instant(sim) -> None:
    sink = int  # any cheap callable; closure-free on purpose
    for instant in range(INSTANT_ROUNDS):
        for _ in range(INSTANT_WIDTH):
            sim.schedule(float(instant), sink)
    sim.run()


def shape_process_chain(sim) -> None:
    def worker():
        for _ in range(CHAIN_STEPS):
            yield sim.timeout(1.0)

    for _ in range(CHAIN_PROCESSES):
        sim.process(worker())
    sim.run()


def shape_allof_fanout(sim) -> None:
    def waiter(delay):
        yield sim.timeout(delay)

    for _ in range(FANOUT_GROUPS):
        procs = [sim.process(waiter(float(i % 5)))
                 for i in range(FANOUT_WIDTH)]
        sim.run(until=sim.all_of(procs))


SHAPES = [
    ("timer_wheel", shape_timer_wheel),
    ("same_instant", shape_same_instant),
    ("process_chain", shape_process_chain),
    ("allof_fanout", shape_allof_fanout),
]


def _measure() -> dict:
    results = {}
    for name, fn in SHAPES:
        opt = _throughput(fn, Simulator)
        ref = _throughput(fn, RefSimulator)
        results[name] = {
            "opt_events_per_sec": round(opt),
            "ref_events_per_sec": round(ref),
            "speedup": round(opt / ref, 3),
        }
    return results


@pytest.mark.benchmark(group="engine")
def test_engine_events_per_second(benchmark):
    results = run_once(benchmark, _measure)

    baseline = json.loads(BASELINE_PATH.read_text())
    primary = baseline["metric"]
    default_required = baseline["required_speedup"]
    gated = baseline.get("gated_metrics") or {primary: {}}

    rows = ["%-15s %14s %14s %9s" % ("shape", "optimized", "naive ref",
                                     "speedup")]
    for name, _ in SHAPES:
        entry = results[name]
        rows.append("%-15s %11d/s %11d/s %8.2fx %s"
                    % (name, entry["opt_events_per_sec"],
                       entry["ref_events_per_sec"], entry["speedup"],
                       "(gated)" if name in gated else ""))
    rows.append("")
    rows.append("gated metrics: %s (each requires speedup >= %.1fx, "
                "committed pre-opt baseline %d ev/s on %s)"
                % (", ".join(sorted(gated)), default_required,
                   baseline["preopt_events_per_sec"], primary))
    report("ENGINE events/sec microbench (optimized vs naive kernel)",
           "\n".join(rows),
           data=dict(results, primary_metric=primary,
                     required_speedup=default_required,
                     gated_metrics=sorted(gated)))

    failures = []
    for name in sorted(gated):
        required = (gated[name] or {}).get("required_speedup",
                                           default_required)
        speedup = results[name]["speedup"]
        if speedup < required:
            failures.append(
                "%s speedup %.2fx < required %.1fx (opt %d ev/s vs naive "
                "%d ev/s)"
                % (name, speedup, required,
                   results[name]["opt_events_per_sec"],
                   results[name]["ref_events_per_sec"]))
    assert not failures, (
        "kernel fast path regressed: " + "; ".join(failures))


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
