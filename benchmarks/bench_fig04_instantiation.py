"""Figure 4 — domain instantiation and boot times, xl vs containers.

Sequentially starts guests of three sizes (Debian, Tinyx, the daytime
unikernel) under stock Xen (xl), plus Docker containers and processes,
and reports create/boot times as the host fills up.

Paper anchors: Debian 500 ms create / 1.5 s boot at first, 42 s create at
the 1000th; Tinyx 360 ms / 180 ms, 10 s at the 1000th; unikernel
80 ms / 3 ms, 700 ms at the 1000th; Docker ≈200 ms flat; processes
≈3.5 ms flat.
"""

from repro.containers import DockerEngine, ProcessSpawner
from repro.core import Host
from repro.core.metrics import mean, sample_indices
from repro.guests import DAYTIME_UNIKERNEL
from repro.sim import RngStream
from repro.stdlib import run_scenario, storm_spec

from _support import (bench_main, fmt, paper_vs_measured, report,
                      run_once, scaled)

COUNTS = {
    "debian": scaled(1000, 200),
    "tinyx": scaled(1000, 400),
    "daytime": scaled(1000, 1000),
}

#: Stock Xen with its stock defaults — no shell pool, no pre-warm
#: (unlike Fig 9, which warms every toolstack the same way).
STOCK_XL = {"ref": "xl@1", "pooled": False}


def vm_storm(image_name, count):
    spec = storm_spec("fig04-%s" % image_name, STOCK_XL,
                      "%s@1" % image_name, count)
    series = run_scenario(spec, seed=0).series
    return series["create_ms"], series["boot_ms"]


def docker_storm(count):
    spec = storm_spec("fig04-docker", "xl@1", "docker@1", count)
    return run_scenario(spec, seed=0).series["start_ms"]


def process_storm(count):
    spec = storm_spec("fig04-process", "xl@1", "process@1", count)
    return run_scenario(spec, seed=0).series["start_ms"]


def run_experiment():
    out = {}
    for name in ("debian", "tinyx", "daytime"):
        out[name] = vm_storm(name, COUNTS[name])
    out["docker"] = (docker_storm(scaled(1000, 500)), None)
    out["process"] = (process_storm(1000), None)
    return out


def test_fig04_instantiation_and_boot(benchmark):
    data = run_once(benchmark, run_experiment)

    deb_c, deb_b = data["debian"]
    tin_c, tin_b = data["tinyx"]
    uni_c, uni_b = data["daytime"]
    docker = data["docker"][0]
    procs = data["process"][0]

    rows = [
        ("debian first create (ms)", 500, fmt(deb_c[0])),
        ("debian first boot (ms)", 1500, fmt(deb_b[0])),
        ("debian %dth create (ms)" % len(deb_c), "(42000 @1000)",
         fmt(deb_c[-1])),
        ("tinyx first create (ms)", 360, fmt(tin_c[0])),
        ("tinyx first boot (ms)", 180, fmt(tin_b[0])),
        ("tinyx %dth create (ms)" % len(tin_c), "(10000 @1000)",
         fmt(tin_c[-1])),
        ("unikernel first create (ms)", 80, fmt(uni_c[0])),
        ("unikernel first boot (ms)", 3, fmt(uni_b[0])),
        ("unikernel %dth create (ms)" % len(uni_c), "(700 @1000)",
         fmt(uni_c[-1])),
        ("docker start, mean (ms)", "~200", fmt(mean(docker))),
        ("process fork/exec, mean (ms)", 3.5, fmt(mean(procs), 2)),
    ]
    samples = sample_indices(len(uni_c), 6)
    series = "\n".join(
        "n=%4d  uni create=%9.1f boot=%8.1f" % (i + 1, uni_c[i], uni_b[i])
        for i in samples)
    report("FIG04 instantiation and boot times",
           paper_vs_measured(rows) + "\n\n" + series,
           data={
               "counts": {name: len(data[name][0]) for name in data},
               "first_create_ms": {"debian": deb_c[0], "tinyx": tin_c[0],
                                   "daytime": uni_c[0]},
               "last_create_ms": {"debian": deb_c[-1], "tinyx": tin_c[-1],
                                  "daytime": uni_c[-1]},
               "first_boot_ms": {"debian": deb_b[0], "tinyx": tin_b[0],
                                 "daytime": uni_b[0]},
               "docker_mean_ms": mean(docker),
               "process_mean_ms": mean(procs),
               "unikernel_create_samples": [
                   [i + 1, uni_c[i]] for i in samples],
           })
    benchmark.extra_info["unikernel_create"] = [uni_c[i] for i in samples]

    # Shape assertions.
    assert deb_c[0] > tin_c[0] > uni_c[0]          # size ordering
    assert deb_b[0] > tin_b[0] > uni_b[0]
    assert uni_c[-1] > uni_c[0] * 3                # growth with N
    assert tin_c[-1] > tin_c[0] * 3
    # Docker and processes do not depend on instance count.
    assert mean(docker[-50:]) < mean(docker[:50]) * 4
    assert abs(mean(procs[-200:]) - mean(procs[:200])) < 2.0
    # With small guests, creation dominates total bring-up time.
    assert uni_c[-1] > uni_b[-1]


def test_fig04_replay_identity():
    """Determinism gate: a scaled-down slice of this figure's experiment
    — a VM storm, a container storm and a process storm on one simulator
    — must produce a byte-identical event timeline on every run (no
    FaultPlan; the faulted counterpart lives in bench_ablation_faults)."""
    from repro.analysis import assert_replay_identical

    def scenario(sim):
        host = Host(variant="xl", seed=0, sim=sim)
        for _ in range(8):
            host.create_vm(DAYTIME_UNIKERNEL)
        engine = DockerEngine(sim, RngStream(0, "docker"), 128 * 1024)
        spawner = ProcessSpawner(sim, RngStream(0, "proc"))
        for _ in range(8):
            for one in (engine.start_container, spawner.spawn):
                def drive(op=one):
                    yield from op()
                sim.run(until=sim.process(drive()))

    report = assert_replay_identical(scenario)
    assert report.identical
    assert report.event_counts[0] > 0


if __name__ == "__main__":
    import sys

    sys.exit(bench_main(__file__))
