"""Figure 2 — boot times grow linearly with VM image size.

The paper inflates the daytime unikernel's uncompressed image with binary
objects (all stored on a ramdisk) and boots it: the time to read, parse
and lay out the image in memory grows linearly, reaching ≈1 s at 1 GB.
"""

from repro.core import Host
from repro.guests import DAYTIME_UNIKERNEL

from _support import fmt, paper_vs_measured, report, run_once

SIZES_MB = (1, 128, 256, 512, 768, 1024)


def boot_time_ms(size_mb: int) -> float:
    host = Host(variant="xl")
    image = DAYTIME_UNIKERNEL.with_kernel_size(size_mb * 1024)
    record = host.create_vm(image)
    return record.total_ms


def test_fig02_boot_vs_image_size(benchmark):
    results = run_once(benchmark,
                       lambda: [(s, boot_time_ms(s)) for s in SIZES_MB])

    baseline = results[0][1]
    deltas = [(size, total - baseline) for size, total in results]
    per_mb = deltas[-1][1] / (SIZES_MB[-1] - SIZES_MB[0])
    rows = [
        ("extra boot time at 1 GB (ms)", "~1000", fmt(deltas[-1][1])),
        ("slope (ms per MB)", "~1", fmt(per_mb, 2)),
    ]
    table = "\n".join("%6d MB  %10.1f ms" % (s, t) for s, t in results)
    report("FIG02 boot time vs image size",
           paper_vs_measured(rows) + "\n\n" + table,
           data={"size_mb": [s for s, _t in results],
                 "total_ms": [t for _s, t in results],
                 "slope_ms_per_mb": per_mb})
    benchmark.extra_info["series"] = results

    # Shape: linear growth — the slope between consecutive points is
    # roughly constant.
    slopes = [(results[i + 1][1] - results[i][1])
              / (results[i + 1][0] - results[i][0])
              for i in range(1, len(results) - 1)]
    assert max(slopes) / min(slopes) < 1.3
    assert 700 <= deltas[-1][1] <= 1500


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
