"""Figure 5 — breakdown of VM creation overheads.

Buckets xl's creation work into the paper's six categories while the
host fills with guests.  Expected shape: XenStore interaction grows
superlinearly and dominates at high VM counts; device creation is the
biggest cost at low counts but stays roughly constant; everything else
is negligible.  Log-rotation produces periodic spikes.
"""

from repro.core import Host
from repro.core.metrics import sample_indices
from repro.guests import DAYTIME_UNIKERNEL
from repro.sim import Simulator
from repro.toolstack import PHASES
from repro.trace import Tracer, phase_attribution

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(1000, 600)


def run_experiment():
    sim = Simulator()
    tracer = Tracer().attach(sim)
    host = Host(variant="xl", sim=sim)
    phase_series = {phase: [] for phase in PHASES}
    for _ in range(COUNT):
        record = host.create_vm(DAYTIME_UNIKERNEL)
        for phase in PHASES:
            phase_series[phase].append(record.phases[phase])
    return phase_series, host.xenstore.stats, tracer


def test_fig05_creation_breakdown(benchmark):
    phase_series, xs_stats, tracer = run_once(benchmark, run_experiment)

    # Cross-check the observability layer: the per-phase totals derived
    # from `phase.*` spans must equal the PhaseRecorder's accumulated
    # series EXACTLY (same sim.now samples, same summation order).
    assert phase_attribution(tracer) == {
        phase: sum(phase_series[phase]) for phase in PHASES}

    first = {p: phase_series[p][0] for p in PHASES}
    last = {p: phase_series[p][-1] for p in PHASES}
    rows = [
        ("xenstore share at n=%d" % COUNT, "dominant",
         "%.0f%%" % (100 * last["xenstore"]
                     / sum(last.values()))),
        ("devices at n=1 (ms)", "largest",
         fmt(first["devices"])),
        ("devices growth factor", "~1 (constant)",
         fmt(last["devices"] / first["devices"], 2)),
        ("xenstore growth factor", "superlinear",
         fmt(last["xenstore"] / max(0.001, first["xenstore"]), 1)),
        ("log rotations observed", ">0 (spikes)",
         xs_stats["rotation_stalls"]),
        ("transaction conflicts", ">0", xs_stats["conflicts"]),
    ]
    samples = sample_indices(COUNT, 6)
    lines = ["n      " + "".join("%12s" % p for p in PHASES)]
    for index in samples:
        lines.append("%-6d" % (index + 1)
                     + "".join("%12.2f" % phase_series[p][index]
                               for p in PHASES))
    report("FIG05 creation overhead breakdown",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={"count": COUNT,
                 "phases": {p: [phase_series[p][i] for i in samples]
                            for p in PHASES},
                 "sampled_n": [i + 1 for i in samples],
                 "span_attribution_ms": phase_attribution(tracer),
                 "spans_recorded": len(tracer.spans)})
    benchmark.extra_info["last"] = last

    # Shape: the two main contributors at scale are XenStore and devices,
    # "to the point of negligibility of all other categories".
    others = (last["toolstack"] + last["load"] + last["hypervisor"]
              + last["config"])
    assert last["xenstore"] > others
    assert last["xenstore"] > 5 * first["xenstore"]      # superlinear
    # Devices grow far slower than the XenStore category ("its overhead
    # stays roughly constant" relative to the XenStore blow-up).
    device_growth = last["devices"] / first["devices"]
    xenstore_growth = last["xenstore"] / max(0.001, first["xenstore"])
    assert device_growth < 4
    assert device_growth < xenstore_growth / 10
    # At low counts device creation dominates.
    assert first["devices"] == max(first.values())
    assert xs_stats["rotation_stalls"] > 0


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
