"""Make the shared `_support` helpers importable regardless of the
directory pytest is invoked from."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
