"""Make the shared `_support` helpers importable regardless of the
directory pytest is invoked from, and register the ``--json`` option."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store_true", dest="repro_bench_json",
        help="also write machine-readable BENCH_<fig>.json files "
             "(figure id, series, DES-engine wall-clock self-timing) "
             "at the repository root")


def pytest_configure(config):
    import _support
    _support.JSON_ENABLED = config.getoption("repro_bench_json",
                                             default=False)
