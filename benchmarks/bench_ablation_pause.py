"""Ablation: the §2 pause/unpause requirement.

"Along with short instantiation times, containers can be paused and
unpaused quickly.  This can be used to achieve even higher density by
pausing idle instances, and more generally to make better use of CPU
resources."  LightVM pauses are a single hypercall; this run freezes 80%
of a loaded Tinyx fleet and measures what that buys: host CPU drops and
newcomers boot faster (the contention from idle background tasks is
gone).
"""

from repro.core.workloads import pause_density
from repro.guests import TINYX

from _support import fmt, paper_vs_measured, report, run_once, scaled

FLEET = scaled(900, 500)


def test_ablation_pause_density(benchmark):
    result = run_once(benchmark,
                      lambda: pause_density(TINYX, FLEET, 0.8))

    rows = [
        ("fleet / frozen", "-", "%d / %d" % (result.fleet, result.paused)),
        ("host CPU before (%)", "rises with fleet",
         fmt(result.utilization_before * 100, 2)),
        ("host CPU after (%)", "lower",
         fmt(result.utilization_after * 100, 2)),
        ("newcomer boot before (ms)", "contended",
         fmt(result.boot_before_ms)),
        ("newcomer boot after (ms)", "faster",
         fmt(result.boot_after_ms)),
    ]
    report("ABLATION-PAUSE freezing idle instances",
           paper_vs_measured(rows),
           data={
               "fleet": result.fleet,
               "paused": result.paused,
               "utilization_before_pct": result.utilization_before * 100,
               "utilization_after_pct": result.utilization_after * 100,
               "boot_before_ms": result.boot_before_ms,
               "boot_after_ms": result.boot_after_ms,
           })

    assert result.utilization_after < result.utilization_before
    assert result.boot_after_ms <= result.boot_before_ms
    # Near the contention knee the effect must be visible, not epsilon.
    if result.boot_before_ms > 200:
        assert result.boot_after_ms < result.boot_before_ms * 0.9


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
