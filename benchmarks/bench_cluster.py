"""Cluster scaling bench: procs backend vs the inline reference.

Not a paper figure: this measures the epoch-barrier scheduler itself on
the tentpole scenario — an 8-host boot storm with open-loop cross-host
request traffic — once on ``backend="inline"`` (the single-process
semantic reference) and once on ``backend="procs"`` with 4 workers.

Two things are checked here, with very different portability:

* **Digest identity** (asserted in this bench, everywhere): the procs
  run must reproduce the inline run's cluster digest bit-for-bit.  This
  is hardware-independent — a violation is a correctness bug, never
  noise.
* **Scaling** (recorded here, enforced by ``repro bench-gate`` against
  ``benchmarks/baseline_cluster.json`` in CI only): procs with 4 workers
  must be >= 2x inline throughput.  That ratio only exists on a
  multi-core machine, so this bench records
  ``data["cluster_scaling"]`` in the engine-bench shape
  (opt/ref events per second plus their ratio) and leaves the judgment
  to the gate, which CI runs on known hardware.
"""

import time

import pytest

from _support import report, run_once, scaled

from repro.cluster import Cluster, boot_storm  # noqa: E402

HOSTS = 8
WORKERS = 4
GUESTS = 64
REQUESTS = scaled(360_000, 120_000)
EPOCH_MS = 10.0
REQUEST_GAP_MS = 0.25


def _config():
    return boot_storm(hosts=HOSTS, guests=GUESTS, requests=REQUESTS,
                      epoch_ms=EPOCH_MS, net_latency_ms=EPOCH_MS,
                      request_gap_ms=REQUEST_GAP_MS)


def _timed_run(backend, workers=None):
    started = time.perf_counter()
    result = Cluster(_config(), backend=backend, workers=workers).run()
    wall_s = time.perf_counter() - started
    return result, wall_s


def _measure() -> dict:
    inline, inline_s = _timed_run("inline")
    procs, procs_s = _timed_run("procs", workers=WORKERS)
    assert procs.digest == inline.digest, (
        "backend divergence: procs digest %s != inline digest %s — this "
        "is a determinism bug, not a perf regression"
        % (procs.digest, inline.digest))
    assert procs.host_digests == inline.host_digests
    assert procs.events == inline.events
    return {
        "events": inline.events,
        "epochs": inline.epochs,
        "digest": inline.digest,
        "inline_wall_s": round(inline_s, 3),
        "procs_wall_s": round(procs_s, 3),
        "cluster_scaling": {
            "opt_events_per_sec": round(procs.events / procs_s),
            "ref_events_per_sec": round(inline.events / inline_s),
            "speedup": round(inline_s / procs_s, 3),
        },
    }


@pytest.mark.benchmark(group="cluster")
def test_cluster_scaling(benchmark):
    results = run_once(benchmark, _measure)
    scaling = results["cluster_scaling"]
    rows = [
        "8-host boot storm, %d guests, %d requests, epoch %.0f ms"
        % (GUESTS, REQUESTS, EPOCH_MS),
        "",
        "%-28s %14s %12s" % ("backend", "events/sec", "wall"),
        "%-28s %11d/s %10.2fs" % ("inline (reference)",
                                  scaling["ref_events_per_sec"],
                                  results["inline_wall_s"]),
        "%-28s %11d/s %10.2fs" % ("procs (%d workers)" % WORKERS,
                                  scaling["opt_events_per_sec"],
                                  results["procs_wall_s"]),
        "",
        "speedup: %.2fx over %d epochs / %d events "
        "(digests byte-identical)"
        % (scaling["speedup"], results["epochs"], results["events"]),
        "",
        "gate: CI requires >= 2.0x on multi-core hardware via "
        "`repro bench-gate --baseline benchmarks/baseline_cluster.json`;"
        " no assertion here — a laptop core count is not a regression",
    ]
    report("CLUSTER epoch-barrier scaling (procs vs inline)",
           "\n".join(rows), data=results)


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
