"""Figure 15 — CPU usage of idle guest fleets.

Idle guests of each type on the 4-core machine: Debian's out-of-the-box
services push host CPU to ~25% at 1000 VMs; Tinyx reaches ~1%; Docker is
lowest; the unikernel is "only a fraction of a percentage point higher"
than Docker (Dom0 netback service for its vif).
"""

import dataclasses

from repro.core import Host
from repro.guests import DAYTIME_UNIKERNEL, DEBIAN, TINYX

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(1000, 400)

#: Idle Docker container CPU share (containerd shims + kernel timers).
DOCKER_UTIL_PER_CONTAINER = 2e-6


def fleet_utilization(image) -> float:
    # chaos+noxs: no shell pool, so large-memory fleets (Debian) fit in
    # host RAM; creation latency is irrelevant to this figure.
    host = Host(variant="chaos+noxs")
    for _ in range(COUNT):
        host.create_vm(image)
    return host.cpu_utilization() * 100.0


def run_experiment():
    debian = dataclasses.replace(DEBIAN, boot_cpu_ms=50.0,
                                 boot_fixed_ms=1.0)  # fast-boot variant
    return {
        "debian": fleet_utilization(debian),
        "tinyx": fleet_utilization(TINYX),
        "unikernel": fleet_utilization(DAYTIME_UNIKERNEL),
        "docker": COUNT * DOCKER_UTIL_PER_CONTAINER * 100.0,
    }


def test_fig15_cpu_usage(benchmark):
    util = run_once(benchmark, run_experiment)
    scale = COUNT / 1000.0

    rows = [
        ("debian @%d (%%)" % COUNT, fmt(25 * scale), fmt(util["debian"])),
        ("tinyx @%d (%%)" % COUNT, fmt(1 * scale, 2), fmt(util["tinyx"],
                                                          3)),
        ("unikernel (%)", "docker + epsilon", fmt(util["unikernel"], 3)),
        ("docker (%)", "lowest", fmt(util["docker"], 3)),
    ]
    report("FIG15 idle-fleet CPU utilization", paper_vs_measured(rows),
           data={"count": COUNT, "utilization_pct": util})
    benchmark.extra_info["util_pct"] = util

    # Shape: debian >> tinyx >> unikernel > docker, unikernel within a
    # fraction of a percentage point of docker.
    assert util["debian"] > util["tinyx"] * 5
    assert util["tinyx"] > util["unikernel"]
    assert util["unikernel"] > util["docker"]
    assert util["unikernel"] - util["docker"] < 0.5
    assert abs(util["debian"] - 25 * scale) / (25 * scale) < 0.3
    assert util["tinyx"] < 2.5 * scale


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
