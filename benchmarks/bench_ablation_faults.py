"""Ablation: fault-rate sweep over a boot storm (robustness curve).

The paper argues a lean control plane is not just faster but *safer*
(§5.3 replaces flaky bash hotplug with xendevd; §4.2 blames XenStore
transaction retries for degradation under load).  This benchmark turns
"simpler is more robust" into a measured curve: sweep a uniform
fault-injection rate across every control-plane fault point and watch
xl's multi-round-trip XenStore pipeline degrade far faster than LightVM's
handful of hypercalls — with the invariant checker verifying that *no*
swept rate leaks a single XenStore entry, grant ref, shell slot or
bridge port.
"""

from repro.core import Host
from repro.core.metrics import percentile
from repro.faults import FaultPlan
from repro.guests import DAYTIME_UNIKERNEL

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(500, 30)
RATES = (0.0, 0.005, 0.02, 0.05)
VARIANTS = ("xl", "chaos+xs", "lightvm")


def storm(variant, rate):
    """One boot storm; returns (p99 create ms, failures, violations)."""
    plan = FaultPlan.uniform(rate, seed=7) if rate else None
    host = Host(variant=variant, seed=7, fault_plan=plan,
                pool_target=COUNT + 64,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(20.0 * (COUNT + 64))
    creates, failures = [], 0
    for _ in range(COUNT):
        try:
            creates.append(host.create_vm(DAYTIME_UNIKERNEL).create_ms)
        except Exception:
            failures += 1
    # Drain in-flight teardowns (crashed shells, rollbacks) before audit.
    host.sim.run(until=host.sim.now + 500.0)
    return percentile(creates, 99), failures, host.check_invariants()


def run_experiment():
    return {variant: [storm(variant, rate) for rate in RATES]
            for variant in VARIANTS}


def test_ablation_faults(benchmark):
    results = run_once(benchmark, run_experiment)

    rows = []
    for variant in VARIANTS:
        base_p99 = results[variant][0][0]
        for rate, (p99, failures, violations) in zip(RATES,
                                                     results[variant]):
            rows.append(
                ("%s p99 @ rate %.3f (ms)" % (variant, rate),
                 "degrades with rate" if rate else "baseline",
                 "%s (x%s, %d failed, %d leaks)"
                 % (fmt(p99, 2), fmt(p99 / base_p99, 2), failures,
                    len(violations))))
    report("ABLATION-FAULTS robustness under injected control-plane "
           "faults", paper_vs_measured(rows),
           data={
               "count": COUNT,
               "rates": list(RATES),
               "p99_create_ms": {
                   v: [p99 for p99, _f, _viol in results[v]]
                   for v in VARIANTS},
               "failures": {
                   v: [f for _p99, f, _viol in results[v]]
                   for v in VARIANTS},
           })

    # Zero invariant violations at every swept rate, every variant.
    for variant in VARIANTS:
        for rate, (_p99, _failures, violations) in zip(RATES,
                                                       results[variant]):
            assert not violations, (
                "%s leaked state at rate %.3f: %s"
                % (variant, rate, violations))

    # xl's p99 degrades strictly faster than LightVM's at every non-zero
    # rate: its creation path crosses the faulty control plane hundreds
    # of times per VM, LightVM's only a handful.  (Measured as added p99
    # milliseconds over the variant's own fault-free baseline; LightVM's
    # sub-2ms base makes ratios of it degenerate.)
    xl_base = results["xl"][0][0]
    lightvm_base = results["lightvm"][0][0]
    for index, rate in enumerate(RATES):
        if rate == 0.0:
            continue
        xl_added = results["xl"][index][0] - xl_base
        lightvm_added = results["lightvm"][index][0] - lightvm_base
        assert xl_added > lightvm_added, (
            "rate %.3f: xl +%.2fms should exceed lightvm +%.2fms"
            % (rate, xl_added, lightvm_added))
    # At the top rate the gap is also a clear relative multiple.
    assert results["xl"][-1][0] / xl_base > 1.2
    assert (results["xl"][-1][0] / xl_base
            > results["lightvm"][-1][0] / lightvm_base)


def test_ablation_faults_replay_identity():
    """Determinism gate: the fault-injected storm replays bit-identically
    — the same (seed, FaultPlan) pair must schedule the exact same
    faults, retries and rollbacks on every run, even when creations
    fail.  This is the dual-run digest half of the PR-1 promise that a
    FaultPlan "replays bit-identically"."""
    from repro.analysis import assert_replay_identical

    def scenario(sim):
        plan = FaultPlan.uniform(0.05, seed=7)
        host = Host(variant="xl", seed=7, sim=sim, fault_plan=plan)
        for _ in range(6):
            try:
                host.create_vm(DAYTIME_UNIKERNEL)
            except Exception:
                pass
        sim.run(until=sim.now + 500.0)
        assert not host.check_invariants()

    report = assert_replay_identical(scenario)
    assert report.identical
    assert report.event_counts[0] > 0


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
