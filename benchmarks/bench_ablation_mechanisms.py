"""Ablations on LightVM's individual mechanisms.

§5's three mechanisms each attack a different bottleneck; these runs
isolate them:

* hotplug: bash scripts vs the xendevd daemon (§5.3) — a fixed ~30-40 ms
  per device either way you slice the rest of the stack;
* split toolstack: prepare/execute split vs inline creation (§5.2) —
  removes the per-create hypervisor+memory work;
* shell pool sizing: a burst larger than the pool falls back to the
  prepare-rate, so the pool must cover the expected burst.
"""

from repro.core import Host
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL
from repro.toolstack import BashHotplug, ChaosToolstack, Xendevd

from _support import fmt, paper_vs_measured, report, run_once, scaled

BURST = scaled(200, 100)


def hotplug_comparison():
    """chaos+noxs with bash hotplug vs xendevd."""
    out = {}
    for label, hotplug_cls in (("bash", BashHotplug),
                               ("xendevd", Xendevd)):
        host = Host(variant="chaos+noxs")
        host.toolstack.hotplug = hotplug_cls(host.sim)
        out[label] = host.create_vm(DAYTIME_UNIKERNEL).create_ms
    return out


def split_comparison():
    """Same control plane (noxs), with and without the split toolstack."""
    with_split = Host(variant="lightvm", pool_target=BURST + 16)
    with_split.warmup(20.0 * (BURST + 16))
    without = Host(variant="chaos+noxs")
    return {
        "split": mean([with_split.create_vm(DAYTIME_UNIKERNEL).create_ms
                       for _ in range(20)]),
        "inline": mean([without.create_vm(DAYTIME_UNIKERNEL).create_ms
                        for _ in range(20)]),
    }


def pool_burst(pool_target):
    """Create a burst with a given pool size; return the mean create."""
    host = Host(variant="lightvm", pool_target=pool_target,
                shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
    host.warmup(20.0 * (pool_target + 16))
    return mean([host.create_vm(DAYTIME_UNIKERNEL).create_ms
                 for _ in range(BURST)])


def run_experiment():
    return (hotplug_comparison(), split_comparison(),
            {"small-pool": pool_burst(4),
             "big-pool": pool_burst(BURST + 16)})


def test_ablation_mechanisms(benchmark):
    hotplug, split, pools = run_once(benchmark, run_experiment)

    rows = [
        ("create w/ bash hotplug (ms)", "+~30-40", fmt(hotplug["bash"])),
        ("create w/ xendevd (ms)", "baseline", fmt(hotplug["xendevd"])),
        ("split-toolstack create (ms)", "~1-2", fmt(split["split"], 2)),
        ("inline create (ms)", "~8-15", fmt(split["inline"], 2)),
        ("burst of %d, pool=4 (ms)" % BURST, "prepare-rate bound",
         fmt(pools["small-pool"], 2)),
        ("burst of %d, pool=%d (ms)" % (BURST, BURST + 16), "flat fast",
         fmt(pools["big-pool"], 2)),
    ]
    report("ABLATION-MECHANISMS hotplug / split / pool",
           paper_vs_measured(rows),
           data={
               "burst": BURST,
               "hotplug_create_ms": hotplug,
               "split_create_ms": split,
               "pool_burst_mean_ms": pools,
           })

    assert hotplug["bash"] - hotplug["xendevd"] > 25
    assert split["split"] < split["inline"] / 2
    # An undersized pool degrades bursts toward the prepare rate.
    assert pools["small-pool"] > pools["big-pool"] * 1.5


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
