"""Figure 16c — high-density TLS termination (§7.3).

Throughput of N TLS proxies on the 14-core machine.  Paper anchors:
Tinyx ≈ bare-metal processes (~1400 req/s with RSA-1024); the unikernel
reaches only a fifth of that (lwip); the TLS unikernel boots in 6 ms with
16 MB of RAM, the Tinyx proxy in ~190 ms with 40 MB.
"""

from repro.core.usecases import run_tls_termination

from _support import fmt, paper_vs_measured, report, run_once


def test_fig16c_tls_termination(benchmark):
    result = run_once(benchmark, run_tls_termination)

    bare = result.series["bare-metal"]
    tinyx = result.series["tinyx"]
    uni = result.series["unikernel"]
    rows = [
        ("unikernel boot (ms)", 6, fmt(result.unikernel_boot_ms)),
        ("tinyx boot (ms)", 190, fmt(result.tinyx_boot_ms)),
        ("bare-metal @1000 (req/s)", "~1400", fmt(bare[-1].requests_per_s)),
        ("tinyx @1000 (req/s)", "~1400", fmt(tinyx[-1].requests_per_s)),
        ("unikernel @1000 (req/s)", "~1/5 of tinyx",
         fmt(uni[-1].requests_per_s)),
    ]
    lines = ["n      bare-metal       tinyx   unikernel"]
    for i, point in enumerate(bare):
        lines.append("%-6d %10.0f  %10.0f  %10.0f"
                     % (point.instances, bare[i].requests_per_s,
                        tinyx[i].requests_per_s, uni[i].requests_per_s))
    report("FIG16c TLS termination throughput",
           paper_vs_measured(rows) + "\n\n" + "\n".join(lines),
           data={
               "unikernel_boot_ms": result.unikernel_boot_ms,
               "tinyx_boot_ms": result.tinyx_boot_ms,
               "instances": [p.instances for p in bare],
               "requests_per_s": {
                   name: [p.requests_per_s for p in series]
                   for name, series in result.series.items()},
           })

    # Shape: throughput grows with N then saturates; Tinyx ≈ bare metal;
    # unikernel ≈ 1/5.
    assert tinyx[-1].requests_per_s > tinyx[0].requests_per_s
    assert abs(tinyx[-1].requests_per_s - bare[-1].requests_per_s) \
        / bare[-1].requests_per_s < 0.1
    ratio = tinyx[-1].requests_per_s / uni[-1].requests_per_s
    assert 4.0 <= ratio <= 6.0
    assert 1100 <= tinyx[-1].requests_per_s <= 1700
    assert result.unikernel_boot_ms < 10
    assert 150 <= result.tinyx_boot_ms <= 230


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
