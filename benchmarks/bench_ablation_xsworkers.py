"""Ablation: XenStore worker pool and request batching (PR 5).

§4.2 blames VM-creation collapse on the serialized, chatty XenStore
control plane.  The redesigned daemon makes both villains tunable:

* ``workers`` shards the store (per-subtree locks, deterministic
  shard-ordered dispatch).  ``workers=1`` is oxenstored, byte-identical
  to the pre-redesign daemon (see tests/test_xenstore_digest_identity).
* ``batch_ops`` lets clients coalesce N ops into one message round trip
  via :meth:`repro.xenstore.XsClient.batch`.

This sweep plots where the creation-time knee (first creation costing
2x the workers=1 floor) moves as the knobs turn: more workers divide the
ambient-load factor, batching shaves round trips per creation, and the
knee shifts right — the "what-if oxenstored were concurrent" ablation
the paper gestures at.  Guests carry 4 vifs so the batched device
publication stretch is long enough to matter.
"""

import dataclasses

from repro.core import Host
from repro.core.metrics import mean
from repro.guests import DAYTIME_UNIKERNEL

from _support import fmt, paper_vs_measured, report, run_once, scaled

COUNT = scaled(1600, 600)
KNEE_FACTOR = 2.0
#: The sweep grid: (workers, batch_ops).
GRID = [(1, False), (1, True), (2, False), (2, True), (4, False), (4, True)]

#: Multi-vif guests make the coalescable device-publication stretch long
#: enough for batching to be visible next to the linear-scan terms.
IMAGE = dataclasses.replace(DAYTIME_UNIKERNEL, vifs=4)


def label(workers, batch):
    return "w%d-%s" % (workers, "batch" if batch else "nobatch")


def storm(workers, batch):
    host = Host(variant="chaos+xs", xenstore_workers=workers,
                xenstore_batch=batch)
    return [host.create_vm(IMAGE).create_ms for _ in range(COUNT)]


def knee_index(series, floor):
    """First creation costing ``KNEE_FACTOR`` times the common floor
    (the median of the baseline config's first 20 creations); COUNT if
    the series never crosses."""
    threshold = floor * KNEE_FACTOR
    for index, value in enumerate(series):
        if value > threshold:
            return index
    return len(series)


def run_experiment():
    return {label(w, b): storm(w, b) for w, b in GRID}


def test_ablation_xsworkers(benchmark):
    results = run_once(benchmark, run_experiment)

    baseline = results[label(1, False)]
    floor = sorted(baseline[:20])[10]  # median of the cold start
    knees = {name: knee_index(series, floor)
             for name, series in results.items()}

    rows = [("%s knee (n) / %dth create (ms)" % (name, COUNT),
             "shifts right" if name != label(1, False) else "baseline",
             "%d / %s" % (knees[name], fmt(series[-1])))
            for name, series in results.items()]
    report("ABLATION-XSWORKERS XenStore worker pool and batching",
           paper_vs_measured(rows),
           data={
               "count": COUNT,
               "knee_factor": KNEE_FACTOR,
               "floor_ms": floor,
               "knee_index": knees,
               "last_create_ms": {
                   name: series[-1] for name, series in results.items()},
               "mean_create_ms": {
                   name: mean(series) for name, series in results.items()},
           })
    benchmark.extra_info["knee_index"] = knees

    # The knee moves right as the worker pool grows (the ambient-load
    # factor divides by `workers`) ...
    for batch in (False, True):
        assert knees[label(1, batch)] < knees[label(2, batch)] \
            < knees[label(4, batch)], knees
    # ... and as batching trims round trips per creation.
    for workers in (1, 2, 4):
        assert knees[label(workers, True)] > knees[label(workers, False)], \
            knees
    # Late-density creation cost drops with the pool size; batching never
    # makes anything slower.
    for batch in (False, True):
        assert results[label(4, batch)][-1] < results[label(2, batch)][-1] \
            < results[label(1, batch)][-1]
    for workers in (1, 2, 4):
        assert results[label(workers, True)][-1] \
            <= results[label(workers, False)][-1]
    # workers=1 is the paper-faithful oxenstored: it must still show the
    # paper's collapse shape (the knee exists well before the end).
    assert knees[label(1, False)] < COUNT // 2


if __name__ == "__main__":
    import sys

    from _support import bench_main
    sys.exit(bench_main(__file__))
