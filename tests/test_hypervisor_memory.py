"""Tests for the extent-based physical-memory allocator."""

import pytest

from repro.hypervisor import Extent, MemoryAllocator, OutOfMemoryError


def test_fresh_allocator_fully_free():
    mem = MemoryAllocator(1024)
    assert mem.free_kb == 1024
    assert mem.used_kb == 0
    assert mem.fragments() == 1


def test_simple_allocate_and_accounting():
    mem = MemoryAllocator(1024)
    extents = mem.allocate("vm1", 256)
    assert sum(e.size_kb for e in extents) == 256
    assert mem.used_kb == 256
    assert mem.owned_kb("vm1") == 256


def test_allocation_is_first_fit_single_extent():
    mem = MemoryAllocator(1024)
    extents = mem.allocate("vm1", 100)
    assert extents == [Extent(0, 100)]
    extents2 = mem.allocate("vm2", 100)
    assert extents2 == [Extent(100, 100)]


def test_free_returns_all_memory():
    mem = MemoryAllocator(1024)
    mem.allocate("vm1", 300)
    released = mem.free("vm1")
    assert released == 300
    assert mem.free_kb == 1024
    assert mem.owned_kb("vm1") == 0


def test_free_unknown_owner_is_noop():
    mem = MemoryAllocator(1024)
    assert mem.free("ghost") == 0


def test_oom_raises():
    mem = MemoryAllocator(1024)
    mem.allocate("vm1", 1000)
    with pytest.raises(OutOfMemoryError):
        mem.allocate("vm2", 100)


def test_exact_fit_allowed():
    mem = MemoryAllocator(1024)
    mem.allocate("vm1", 1024)
    assert mem.free_kb == 0


def test_invalid_sizes_rejected():
    mem = MemoryAllocator(1024)
    with pytest.raises(ValueError):
        mem.allocate("vm1", 0)
    with pytest.raises(ValueError):
        mem.allocate("vm1", -5)
    with pytest.raises(ValueError):
        MemoryAllocator(0)


def test_fragmented_allocation_spans_extents():
    mem = MemoryAllocator(300)
    mem.allocate("a", 100)  # [0,100)
    mem.allocate("b", 100)  # [100,200)
    mem.allocate("c", 100)  # [200,300)
    mem.free("a")
    mem.free("c")
    # Free space is [0,100) + [200,300): a 150 KiB request must span both.
    extents = mem.allocate("d", 150)
    assert len(extents) == 2
    assert sum(e.size_kb for e in extents) == 150


def test_exact_exhaustion_spanning_all_fragments():
    """A gather that consumes the free list exactly must succeed (the
    loop must not index past the now-empty list)."""
    mem = MemoryAllocator(300)
    mem.allocate("a", 100)
    mem.allocate("b", 100)
    mem.allocate("c", 100)
    mem.free("a")
    mem.free("c")  # free space: [0,100) + [200,300)
    extents = mem.allocate("d", 200)
    assert sum(e.size_kb for e in extents) == 200
    assert mem.free_kb == 0
    assert mem.fragments() == 0
    # And the memory comes back intact.
    assert mem.free("d") == 200


def test_gather_exhaustion_rolls_back_and_raises_typed_error():
    """If the free list runs dry mid-gather (free accounting drifted from
    the list), allocate must fail atomically with OutOfMemoryError — not
    leak the partial grab through an IndexError."""
    class DriftingAllocator(MemoryAllocator):
        # Over-reports free memory so allocate() passes its precondition
        # and reaches the gather loop with too little actually free.
        @property
        def free_kb(self):
            return super().free_kb + 64

    mem = DriftingAllocator(300)
    mem.allocate("a", 100)
    mem.allocate("b", 100)
    mem.allocate("c", 100)
    mem.free("a")
    mem.free("c")  # really free: 200 KiB, reported: 264 KiB
    before = list(mem._free)
    with pytest.raises(OutOfMemoryError):
        mem.allocate("d", 232)
    # Atomic failure: no partial grab leaked, free list restored exactly.
    assert mem.owned_kb("d") == 0
    assert "d" not in mem.owners()
    assert mem._free == before


def test_coalescing_restores_single_extent():
    mem = MemoryAllocator(300)
    mem.allocate("a", 100)
    mem.allocate("b", 100)
    mem.allocate("c", 100)
    for owner in ("b", "a", "c"):
        mem.free(owner)
    assert mem.fragments() == 1
    assert mem.free_kb == 300


def test_multiple_allocations_per_owner_accumulate():
    mem = MemoryAllocator(1024)
    mem.allocate("vm1", 100)
    mem.allocate("vm1", 50)
    assert mem.owned_kb("vm1") == 150
    assert mem.free("vm1") == 150


def test_owners_listing():
    mem = MemoryAllocator(1024)
    mem.allocate("x", 10)
    mem.allocate("y", 10)
    assert set(mem.owners()) == {"x", "y"}
