"""Tests for the processor-sharing CPU model."""

import pytest

from repro.sim import CpuPool, PSCore, Simulator


def test_single_task_runs_at_full_rate():
    sim = Simulator()
    core = PSCore(sim)
    done = core.execute(10.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_two_equal_tasks_share_equally():
    sim = Simulator()
    core = PSCore(sim)
    d1 = core.execute(10.0)
    d2 = core.execute(10.0)
    sim.run(until=sim.all_of([d1, d2]))
    assert sim.now == pytest.approx(20.0)


def test_short_task_finishes_first_then_long_speeds_up():
    sim = Simulator()
    core = PSCore(sim)
    short = core.execute(5.0)
    long = core.execute(10.0)
    sim.run(until=short)
    # Shared at rate 1/2 until short drains: 5 work -> 10 ms.
    assert sim.now == pytest.approx(10.0)
    sim.run(until=long)
    # Long had 5 work left, now alone: finishes 5 ms later.
    assert sim.now == pytest.approx(15.0)


def test_staggered_arrival():
    sim = Simulator()
    core = PSCore(sim)
    first = core.execute(10.0)
    done_times = {}
    first.add_callback(lambda e: done_times.__setitem__("first", sim.now))

    def late_arrival():
        yield 5.0
        done = core.execute(10.0)
        yield done
        done_times["second"] = sim.now

    sim.process(late_arrival())
    sim.run()
    # First: 5 ms alone (5 work done), then shared; 5 work left at rate
    # 1/2 -> finishes at t=15.  Second: 5 work done by t=15, then alone,
    # 5 left -> finishes at t=20.
    assert done_times["first"] == pytest.approx(15.0)
    assert done_times["second"] == pytest.approx(20.0)


def test_rate_scales_completion():
    sim = Simulator()
    core = PSCore(sim, rate=2.0)
    done = core.execute(10.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(5.0)


def test_zero_work_completes_immediately():
    sim = Simulator()
    core = PSCore(sim)
    done = core.execute(0.0)
    assert done.triggered
    assert core.active_tasks == 0


def test_negative_work_rejected():
    sim = Simulator()
    core = PSCore(sim)
    with pytest.raises(ValueError):
        core.execute(-1.0)


def test_background_load_slows_tasks():
    sim = Simulator()
    core = PSCore(sim)
    core.add_background(1.0)  # same weight as one task
    done = core.execute(10.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(20.0)


def test_background_removal_restores_rate():
    sim = Simulator()
    core = PSCore(sim)
    core.add_background(1.0)
    done = core.execute(10.0)

    def lighten():
        yield 10.0  # 5 work done by then (shared half/half)
        core.remove_background(1.0)

    sim.process(lighten())
    sim.run(until=done)
    assert sim.now == pytest.approx(15.0)


def test_weighted_task_gets_larger_share():
    sim = Simulator()
    core = PSCore(sim)
    heavy = core.execute(10.0, weight=3.0)
    light = core.execute(10.0, weight=1.0)
    sim.run(until=heavy)
    # heavy progresses at 3/4: 10 work -> 40/3 ms.
    assert sim.now == pytest.approx(40.0 / 3.0)
    sim.run(until=light)


def test_utilization_idle_busy_background():
    sim = Simulator()
    core = PSCore(sim)
    assert core.utilization() == 0.0
    core.add_background(0.25)
    assert core.utilization() == pytest.approx(0.25)
    core.add_background(2.0)
    assert core.utilization() == 1.0
    core.remove_background(2.25)
    core.execute(1.0)
    assert core.utilization() == 1.0


def test_busy_time_accumulates():
    sim = Simulator()
    core = PSCore(sim)
    done = core.execute(4.0)
    sim.run(until=done)
    sim.timeout(6.0)
    sim.run()
    assert core.busy_time() == pytest.approx(4.0)


def test_busy_time_with_fractional_background():
    sim = Simulator()
    core = PSCore(sim)
    core.add_background(0.5)
    sim.timeout(10.0)
    sim.run()
    assert core.busy_time() == pytest.approx(5.0)


def test_pool_round_robin_placement():
    sim = Simulator()
    pool = CpuPool(sim, cores=3)
    picks = [pool.place() for _ in range(6)]
    assert picks[0:3] == pool.cores
    assert picks[3:6] == pool.cores


def test_pool_utilization_mean():
    sim = Simulator()
    pool = CpuPool(sim, cores=2)
    pool.cores[0].execute(100.0)
    assert pool.utilization() == pytest.approx(0.5)


def test_many_tasks_complete_and_conserve_work():
    sim = Simulator()
    core = PSCore(sim)
    events = [core.execute(float(i)) for i in range(1, 21)]
    sim.run(until=sim.all_of(events))
    total_work = sum(range(1, 21))
    assert sim.now == pytest.approx(float(total_work))
    assert core.busy_time() == pytest.approx(float(total_work))
