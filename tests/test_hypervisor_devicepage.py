"""Tests for the noxs device memory page (packed binary format)."""

import pytest

from repro.hypervisor import (DEV_VBD, DEV_VIF, MAX_ENTRIES, PAGE_SIZE,
                              STATE_CONNECTED, STATE_INITIALISING,
                              DeviceEntry, DevicePage, DevicePageError)


def vif_entry(port=7, ref=42, mac=b"\x00\x16\x3e\x01\x02\x03"):
    return DeviceEntry(DEV_VIF, STATE_INITIALISING, 0, port, ref, mac)


def test_fresh_page_is_empty():
    page = DevicePage()
    assert page.count == 0
    assert page.entries() == []
    assert len(page.readonly_view()) == PAGE_SIZE


def test_add_and_read_roundtrip():
    page = DevicePage()
    index = page.add(vif_entry())
    entry = page.read(index)
    assert entry.dev_type == DEV_VIF
    assert entry.evtchn_port == 7
    assert entry.grant_ref == 42
    assert entry.mac == b"\x00\x16\x3e\x01\x02\x03"
    assert page.count == 1


def test_entry_pack_unpack_roundtrip():
    entry = vif_entry()
    assert DeviceEntry.unpack(entry.pack()) == entry


def test_bad_mac_length_rejected():
    entry = DeviceEntry(DEV_VIF, 1, 0, 1, 1, b"\x00")
    with pytest.raises(DevicePageError):
        entry.pack()


def test_read_empty_slot_rejected():
    page = DevicePage()
    with pytest.raises(DevicePageError):
        page.read(0)


def test_index_out_of_range_rejected():
    page = DevicePage()
    with pytest.raises(DevicePageError):
        page.read(MAX_ENTRIES)


def test_update_state():
    page = DevicePage()
    index = page.add(vif_entry())
    page.update_state(index, STATE_CONNECTED)
    assert page.read(index).state == STATE_CONNECTED


def test_remove_clears_slot_and_count():
    page = DevicePage()
    index = page.add(vif_entry())
    page.remove(index)
    assert page.count == 0
    with pytest.raises(DevicePageError):
        page.read(index)


def test_removed_slot_is_reused():
    page = DevicePage()
    i0 = page.add(vif_entry(port=1))
    page.add(vif_entry(port=2))
    page.remove(i0)
    i2 = page.add(vif_entry(port=3))
    assert i2 == i0


def test_page_capacity_limit():
    page = DevicePage()
    for _ in range(MAX_ENTRIES):
        page.add(vif_entry())
    with pytest.raises(DevicePageError):
        page.add(vif_entry())


def test_guest_side_parse_sees_all_entries():
    page = DevicePage()
    page.add(vif_entry(port=1))
    page.add(DeviceEntry(DEV_VBD, STATE_INITIALISING, 0, 9, 10, b"\0" * 6))
    entries = DevicePage.parse(page.readonly_view())
    assert len(entries) == 2
    assert {e.dev_type for e in entries} == {DEV_VIF, DEV_VBD}


def test_parse_rejects_bad_magic():
    with pytest.raises(DevicePageError):
        DevicePage.parse(bytes(PAGE_SIZE))


def test_parse_rejects_wrong_size():
    with pytest.raises(DevicePageError):
        DevicePage.parse(b"\0" * 100)


def test_readonly_view_is_snapshot():
    page = DevicePage()
    view = page.readonly_view()
    page.add(vif_entry())
    assert DevicePage.parse(view) == []  # old snapshot unchanged
    assert len(DevicePage.parse(page.readonly_view())) == 1


def test_write_counter_tracks_hypercalls():
    page = DevicePage()
    index = page.add(vif_entry())
    page.update_state(index, STATE_CONNECTED)
    page.remove(index)
    assert page.writes == 3
