"""Digest-identity proofs for the XenStore client/daemon redesign.

The PR-5 redesign replaced the single-worker daemon's ``op_*`` surface
with a client handle API (:class:`repro.xenstore.client.XsClient`), a
batching layer, and a configurable worker pool.  The contract is that
``workers=1`` (the paper-faithful default) is **byte-identical** to the
pre-redesign daemon: every figure workload here runs once on the current
stack and once with the daemon swapped for the frozen seed-semantics
copy (``tests/reference_xenstore.py``), and the
:class:`~repro.analysis.sanitize.EventTrace` digests must match — the
same way ``tests/test_reference_kernel.py`` pins the DES-kernel fast
path.

Also pinned here:

* the legacy ``op_*`` / ``tx_*`` deprecation shims are digest-neutral
  (a shimmed run replays identically to a canonical-verb run);
* the client handle layer is digest-neutral over both daemons;
* ``workers>1`` dispatch is deterministic: identical replays for any
  seed, including under concurrent multi-process interleavings
  (property-tested with hypothesis).
"""

import warnings

import pytest

from repro.analysis.sanitize import EventTrace
from repro.sim import Simulator
from repro.xenstore import XenStoreDaemon, XsClient

import repro.core.host as host_module
from tests.reference_xenstore import XenStoreDaemon as FrozenDaemon
from tests.test_reference_kernel import (SCENARIOS, SEEDS, run_traced)


def _frozen_for_host(sim, *args, **kwargs):
    """Build the frozen daemon from Host's call; the frozen class
    predates the pool knobs, which must be at their defaults anyway for
    an identity comparison to make sense."""
    assert kwargs.pop("workers", 1) == 1
    assert kwargs.pop("batch_ops", False) is False
    assert kwargs.pop("queue_cap", None) is None
    return FrozenDaemon(sim, *args, **kwargs)


@pytest.fixture
def frozen_xenstore():
    """Swap the Host's daemon class for the frozen pre-redesign copy."""
    original = host_module.XenStoreDaemon
    host_module.XenStoreDaemon = _frozen_for_host
    try:
        yield
    finally:
        host_module.XenStoreDaemon = original


# ----------------------------------------------------------------------
# Figure workloads: redesigned stack vs frozen pre-redesign daemon
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_workers1_digest_identical_to_frozen_daemon(name, seed,
                                                    frozen_xenstore):
    scenario = SCENARIOS[name]
    # Order matters only for clarity: the frozen run happens inside the
    # fixture's patch window, the redesigned run after restoring it.
    reference = run_traced(Simulator, scenario, seed)
    host_module.XenStoreDaemon = XenStoreDaemon
    redesigned = run_traced(Simulator, scenario, seed)
    assert redesigned.events == reference.events
    assert redesigned.events > 0
    assert redesigned.digest() == reference.digest()


# ----------------------------------------------------------------------
# Shim and client layers are digest-neutral on one daemon
# ----------------------------------------------------------------------

def _storm_via_legacy_shims(sim, seed):
    """A mixed op storm spelled with the deprecated ``op_*`` surface."""
    xs = XenStoreDaemon(sim, rng=None)

    def drive():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for index in range(seed % 3 + 4):
                base = "/local/domain/%d" % index
                yield from xs.op_mkdir(0, base)
                yield from xs.op_write(0, base + "/name", "g%d" % index)
                yield from xs.op_check_unique_name(0, "h%d" % index)
                watch = yield from xs.op_watch(0, base, "t", lambda p, t: 0)
                yield from xs.op_write(0, base + "/state", "up")
                value = yield from xs.op_read(0, base + "/name")
                assert value == "g%d" % index
                yield from xs.op_directory(0, base)
                tx = yield from xs.transaction_start(0)
                yield from xs.tx_write(tx, base + "/memory/target", "64")
                yield from xs.tx_read(tx, base + "/name")
                yield from xs.transaction_commit(tx)
                yield from xs.op_unwatch(0, watch)
                yield from xs.op_rm(0, base)
    sim.run(until=sim.process(drive()))


def _storm_via_canonical_verbs(sim, seed):
    """The same storm on the canonical daemon verbs."""
    xs = XenStoreDaemon(sim, rng=None)

    def drive():
        for index in range(seed % 3 + 4):
            base = "/local/domain/%d" % index
            yield from xs.mkdir(0, base)
            yield from xs.write(0, base + "/name", "g%d" % index)
            yield from xs.check_unique_name(0, "h%d" % index)
            watch = yield from xs.watch(0, base, "t", lambda p, t: 0)
            yield from xs.write(0, base + "/state", "up")
            value = yield from xs.read(0, base + "/name")
            assert value == "g%d" % index
            yield from xs.directory(0, base)
            tx = yield from xs.transaction_start(0)
            yield from xs.txn_write(tx, base + "/memory/target", "64")
            yield from xs.txn_read(tx, base + "/name")
            yield from xs.transaction_commit(tx)
            yield from xs.unwatch(0, watch)
            yield from xs.rm(0, base)
    sim.run(until=sim.process(drive()))


def _storm_via_client(daemon_cls):
    def scenario(sim, seed):
        xs = daemon_cls(sim, rng=None)
        client = XsClient(xs)

        def drive():
            for index in range(seed % 3 + 4):
                base = "/local/domain/%d" % index
                yield from client.mkdir(base)
                yield from client.write(base + "/name", "g%d" % index)
                yield from client.check_unique_name("h%d" % index)
                watch = yield from client.watch(base, "t", lambda p, t: 0)
                yield from client.write(base + "/state", "up")
                value = yield from client.read(base + "/name")
                assert value == "g%d" % index
                yield from client.directory(base)

                def body(txn, base=base):
                    yield from txn.write(base + "/memory/target", "64")
                    yield from txn.read(base + "/name")
                yield from client.transaction(body)
                yield from client.unwatch(watch)
                yield from client.rm(base)
        sim.run(until=sim.process(drive()))
    return scenario


@pytest.mark.parametrize("seed", SEEDS)
def test_legacy_shims_are_digest_neutral(seed):
    shimmed = run_traced(Simulator, _storm_via_legacy_shims, seed)
    canonical = run_traced(Simulator, _storm_via_canonical_verbs, seed)
    assert shimmed.events == canonical.events > 0
    assert shimmed.digest() == canonical.digest()


@pytest.mark.parametrize("seed", SEEDS)
def test_client_layer_is_digest_neutral(seed):
    direct = run_traced(Simulator, _storm_via_canonical_verbs, seed)
    via_client = run_traced(Simulator, _storm_via_client(XenStoreDaemon),
                            seed)
    assert via_client.digest() == direct.digest()


@pytest.mark.parametrize("seed", SEEDS)
def test_client_over_frozen_daemon_matches_redesigned(seed):
    """The client's legacy-name fallback drives the frozen daemon to the
    exact same timeline as the redesigned one (with one transaction
    caveat: the frozen daemon predates XsTxn, so the client resolves its
    ``tx_*`` verbs — still byte-identical)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        over_frozen = run_traced(Simulator, _storm_via_client(FrozenDaemon),
                                 seed)
    over_new = run_traced(Simulator, _storm_via_client(XenStoreDaemon),
                          seed)
    assert over_frozen.digest() == over_new.digest()


# ----------------------------------------------------------------------
# workers>1: deterministic shard-ordered dispatch
# ----------------------------------------------------------------------

def _sharded_storm(workers, batch_ops, writers):
    """Concurrent writer processes hammering several guest subtrees."""
    def scenario(sim, seed):
        xs = XenStoreDaemon(sim, rng=None, workers=workers,
                            batch_ops=batch_ops)
        client = XsClient(xs)

        def writer(domid, offset):
            guest = client.for_domain(0)
            base = "/local/domain/%d" % domid
            yield sim.timeout(offset)
            yield from guest.write(base + "/name", "g%d" % domid)
            yield from guest.check_unique_name("n-%d-%d" % (domid, seed))
            with guest.batch() as batch:
                for leaf in range(3):
                    batch.write("%s/data/%d" % (base, leaf), str(leaf))
                yield from batch.commit()

            def body(txn, base=base):
                yield from txn.write(base + "/memory/target", "64")
                yield from txn.rm(base + "/data/0")
            yield from guest.transaction(body)

        for domid, offset in writers:
            sim.process(writer(domid, float(offset)))
        sim.run()
        return xs
    return scenario


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("batch_ops", (False, True))
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_dispatch_replays_identically(workers, batch_ops, seed):
    writers = tuple((domid, (domid * seed) % 5) for domid in range(1, 9))
    scenario = _sharded_storm(workers, batch_ops, writers)
    first = run_traced(Simulator, scenario, seed)
    second = run_traced(Simulator, scenario, seed)
    assert first.events == second.events > 0
    assert first.digest() == second.digest()


def test_multi_shard_ops_acquire_in_ascending_order():
    """The deadlock-freedom/determinism invariant: whatever path set a
    batch or global op touches, the shard list is ascending and
    de-duplicated."""
    xs = XenStoreDaemon(Simulator(), workers=4)
    paths = ["/local/domain/%d/x" % index for index in range(16)]
    paths += ["/vm/%d" % index for index in range(16)]
    paths += ["/tool/pools", "/libxl/x"]
    for start in range(0, len(paths), 5):
        subset = paths[start:start + 7]
        shards = xs._shards_for(subset)
        assert list(shards) == sorted(set(shards))
    assert xs._all_shards() == (0, 1, 2, 3)


def test_backend_paths_follow_frontend_shard():
    """Dom0's per-guest backend state shards with the *frontend* guest,
    so a device handshake never straddles two shards."""
    xs = XenStoreDaemon(Simulator(), workers=4)
    for domid in range(1, 20):
        guest = xs._shard_index("/local/domain/%d/device/vif/0" % domid)
        backend = xs._shard_index(
            "/local/domain/0/backend/vif/%d/0/state" % domid)
        assert guest == backend == domid % 4


# ----------------------------------------------------------------------
# Property: dispatch determinism under arbitrary interleavings
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=40, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=4),
    batch_ops=st.booleans(),
    writers=st.lists(
        st.tuples(st.integers(min_value=1, max_value=12),
                  st.integers(min_value=0, max_value=9)),
        min_size=1, max_size=8, unique_by=lambda pair: pair[0]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_prop_shard_dispatch_deterministic(workers, batch_ops, writers,
                                           seed):
    scenario = _sharded_storm(workers, batch_ops, tuple(writers))
    first = run_traced(Simulator, scenario, seed)
    second = run_traced(Simulator, scenario, seed)
    assert first.digest() == second.digest()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(
    ["/local/domain/%d/a" % index for index in range(10)]
    + ["/vm/%d" % index for index in range(10)]
    + ["/tool/x", "/libxl/y", "/"]), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=6))
def test_prop_shards_for_sorted_and_stable(paths, workers):
    xs = XenStoreDaemon(Simulator(), workers=workers)
    shards = xs._shards_for(paths)
    assert list(shards) == sorted(set(shards))
    assert shards == xs._shards_for(list(reversed(paths)))
    assert all(0 <= index < workers for index in shards)
