"""Batch abort semantics: a failing batch has *zero* observable effects.

Regression tests pinning the contract from the issue: when a batch fails
atomic pre-validation — malformed op kind, quota overrun, bad path — no
watch event fires, no quota is charged and the tree is untouched.  Both
daemon modes are covered: coalesced (``batch_ops=True``) and the
degraded sequential path, which must reject malformed batches *up
front* rather than failing mid-way with earlier ops already applied.
"""

import pytest

from repro.sim import Simulator
from repro.xenstore import XenStoreCosts, XenStoreDaemon, XsClient
from repro.xenstore.daemon import BatchError, QuotaExceededError


def drive(sim, gen):
    result = []

    def runner():
        result.append((yield from gen))
    sim.run(until=sim.process(runner()))
    return result[0]


def make_daemon(batch_ops, **kwargs):
    sim = Simulator()
    daemon = XenStoreDaemon(sim, rng=None, batch_ops=batch_ops, **kwargs)
    return sim, daemon


def snapshot(daemon):
    """Observable state a failed batch must not perturb."""
    return {
        "watch_events": daemon.stats["watch_events"],
        "quota": dict(daemon._node_counts),
        "exists": daemon.tree.exists("/local/domain/1/a"),
    }


def watch_root(sim, daemon, fired):
    drive(sim, XsClient(daemon).watch(
        "/local/domain/1", "tok", lambda path, token: fired.append(path)))


class TestMalformedBatch:
    @pytest.mark.parametrize("batch_ops", [False, True],
                             ids=["sequential", "coalesced"])
    def test_unknown_kind_rejects_everything(self, batch_ops):
        sim, daemon = make_daemon(batch_ops)
        fired = []
        watch_root(sim, daemon, fired)
        before = snapshot(daemon)
        ops = [("write", "/local/domain/1/a", "1"),
               ("write", "/local/domain/1/b", "2"),
               ("chmod", "/local/domain/1/a", "0755")]
        with pytest.raises(BatchError):
            drive(sim, daemon.apply_batch(1, ops))
        assert snapshot(daemon) == before
        assert fired == []

    @pytest.mark.parametrize("batch_ops", [False, True],
                             ids=["sequential", "coalesced"])
    def test_malformed_op_first_changes_nothing_either(self, batch_ops):
        sim, daemon = make_daemon(batch_ops)
        with pytest.raises(BatchError):
            drive(sim, daemon.apply_batch(
                1, [("chmod", "/x", None),
                    ("write", "/local/domain/1/a", "1")]))
        assert not daemon.tree.exists("/local/domain/1/a")


class TestQuotaAbort:
    def test_coalesced_overrun_fires_no_watch_charges_no_quota(self):
        sim, daemon = make_daemon(
            True, costs=XenStoreCosts(quota_nodes_per_domain=2))
        fired = []
        watch_root(sim, daemon, fired)
        before = snapshot(daemon)
        ops = [("write", "/local/domain/1/a", "1"),
               ("write", "/local/domain/1/b", "2"),
               ("write", "/local/domain/1/c", "3")]
        with pytest.raises(QuotaExceededError):
            drive(sim, daemon.apply_batch(1, ops))
        assert snapshot(daemon) == before
        assert fired == []
        assert daemon._node_counts.get(1, 0) == 0

    def test_batch_under_quota_charges_per_node_created(self):
        sim, daemon = make_daemon(
            True, costs=XenStoreCosts(quota_nodes_per_domain=10))
        drive(sim, daemon.apply_batch(
            1, [("write", "/local/domain/1/a", "1"),
                ("write", "/local/domain/1/a", "again"),  # no new node
                ("write", "/local/domain/1/b", "2")]))
        # a + b = 2 new leaf nodes; the overwrite is free.
        assert daemon._node_counts[1] == 2


class TestSuccessfulBatchStillObservable:
    @pytest.mark.parametrize("batch_ops", [False, True],
                             ids=["sequential", "coalesced"])
    def test_watches_fire_once_per_mutation_on_success(self, batch_ops):
        sim, daemon = make_daemon(batch_ops)
        fired = []
        watch_root(sim, daemon, fired)
        client = XsClient(daemon).for_domain(1)
        with client.batch() as batch:
            batch.write("/local/domain/1/a", "1")
            batch.write("/local/domain/1/b", "2")
            drive(sim, batch.commit())
        sim.run(until=sim.now + 10.0)
        assert sorted(fired) == ["/local/domain/1/a", "/local/domain/1/b"]
