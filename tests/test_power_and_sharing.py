"""Tests for pause/unpause and the page-sharing extension."""

import pytest

from repro.core import Host, VARIANTS
from repro.guests import DAYTIME_UNIKERNEL, TINYX
from repro.hypervisor import (DomainState, MemoryAllocator,
                              SharedImagePool, SharingPolicy)


class TestPauseUnpause:
    @pytest.mark.parametrize("variant", ["xl", "lightvm"])
    def test_pause_unpause_round_trip(self, variant):
        host = Host(variant=variant)
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        host.pause_vm(record.domain)
        assert record.domain.state == DomainState.PAUSED
        host.unpause_vm(record.domain)
        assert record.domain.state == DomainState.RUNNING

    def test_pause_keeps_memory_reservation(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        owned = host.hypervisor.memory.owned_kb(record.domain.domid)
        host.pause_vm(record.domain)
        assert host.hypervisor.memory.owned_kb(
            record.domain.domid) == owned

    def test_pause_releases_idle_cpu_load(self):
        host = Host(variant="xl")
        record = host.create_vm(TINYX)
        assert record.domain.background_weight > 0
        host.pause_vm(record.domain)
        assert record.domain.background_weight == 0
        host.unpause_vm(record.domain)
        assert record.domain.background_weight > 0

    def test_pause_stops_xenstore_chatter(self):
        host = Host(variant="xl")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        clients_running = host.xenstore.ambient_clients
        host.pause_vm(record.domain)
        assert host.xenstore.ambient_clients < clients_running
        host.unpause_vm(record.domain)
        assert host.xenstore.ambient_clients == clients_running

    def test_chaos_pause_much_faster_than_xl(self):
        def pause_latency(variant):
            host = Host(variant=variant)
            host.warmup(500)
            record = host.create_vm(DAYTIME_UNIKERNEL)
            start = host.sim.now
            host.pause_vm(record.domain)
            return host.sim.now - start

        assert pause_latency("lightvm") < pause_latency("xl") / 10

    def test_unpause_does_not_reboot(self):
        """Thawing must be instant-ish, nothing like a boot."""
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        host.pause_vm(record.domain)
        start = host.sim.now
        host.unpause_vm(record.domain)
        assert host.sim.now - start < 1.0

    def test_double_pause_rejected(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        host.pause_vm(record.domain)
        with pytest.raises(Exception):
            host.pause_vm(record.domain)


class TestPageSharing:
    def test_first_instance_pays_full_price(self):
        mem = MemoryAllocator(1024 * 1024)
        pool = SharedImagePool(mem)
        charged = pool.allocate_instance("daytime", "vm1", 4096)
        assert charged == pytest.approx(4096, abs=2)
        assert pool.dedup_saved_kb == 0

    def test_later_instances_cheaper(self):
        mem = MemoryAllocator(1024 * 1024)
        pool = SharedImagePool(mem)
        first = pool.allocate_instance("daytime", "vm1", 4096)
        second = pool.allocate_instance("daytime", "vm2", 4096)
        assert second < first / 2
        assert pool.dedup_saved_kb > 0

    def test_thousand_instances_vs_no_sharing(self):
        """The §9 what-if: dedup cuts the Fig 14 footprint hard."""
        no_share = MemoryAllocator(256 * 1024 * 1024)
        shared_mem = MemoryAllocator(256 * 1024 * 1024)
        pool = SharedImagePool(shared_mem)
        for index in range(1000):
            no_share.allocate("plain-%d" % index, 8192)
            pool.allocate_instance("minipython", "vm-%d" % index, 8192)
        assert shared_mem.used_kb < no_share.used_kb * 0.6

    def test_different_images_do_not_share(self):
        mem = MemoryAllocator(1024 * 1024)
        pool = SharedImagePool(mem)
        pool.allocate_instance("a", "vm1", 4096)
        charged = pool.allocate_instance("b", "vm2", 4096)
        assert charged == pytest.approx(4096, abs=2)

    def test_master_freed_with_last_instance(self):
        mem = MemoryAllocator(1024 * 1024)
        pool = SharedImagePool(mem)
        pool.allocate_instance("a", "vm1", 4096)
        pool.allocate_instance("a", "vm2", 4096)
        pool.free_instance("a", "vm1")
        assert pool.instances_of("a") == 1
        assert mem.used_kb > 0
        pool.free_instance("a", "vm2")
        assert pool.instances_of("a") == 0
        assert mem.used_kb == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SharingPolicy(shareable_fraction=1.5)
        with pytest.raises(ValueError):
            SharingPolicy(cow_divergence=-0.1)

    def test_instance_cost_preview_matches_allocation(self):
        mem = MemoryAllocator(1024 * 1024)
        pool = SharedImagePool(mem)
        assert pool.instance_cost_kb("x", 4096) == 4096
        pool.allocate_instance("x", "vm1", 4096)
        preview = pool.instance_cost_kb("x", 4096)
        used_before = mem.used_kb
        pool.allocate_instance("x", "vm2", 4096)
        assert mem.used_kb - used_before == pytest.approx(preview, abs=2)


class TestReboot:
    def test_reboot_round_trip_noxs(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        domain = record.domain
        domid = domain.domid
        proc = host.sim.process(host.power.reboot(domain))
        report = host.sim.run(until=proc)
        assert domain.state == DomainState.RUNNING
        assert domain.domid == domid          # same domain survives
        assert report.total_ms > 0

    def test_reboot_round_trip_xl(self):
        host = Host(variant="xl")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        clients_before = host.xenstore.ambient_clients
        proc = host.sim.process(host.power.reboot(record.domain))
        host.sim.run(until=proc)
        assert record.domain.state == DomainState.RUNNING
        assert host.xenstore.ambient_clients == clients_before

    def test_reboot_faster_than_destroy_create(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        start = host.sim.now
        proc = host.sim.process(host.power.reboot(record.domain))
        host.sim.run(until=proc)
        reboot_ms = host.sim.now - start
        fresh = host.create_vm(DAYTIME_UNIKERNEL)
        assert reboot_ms < fresh.total_ms * 2.5

    def test_reboot_without_image_rejected(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL, boot=False)
        record.domain.image = None
        host.hypervisor.domctl_unpause(record.domain)
        with pytest.raises(RuntimeError):
            proc = host.sim.process(host.power.reboot(record.domain))
            host.sim.run(until=proc)
