"""Client API semantics: XsClient handles, XsBatch, XsTxn, shims.

Covers the PR-5 satellite checklist: batch partial-failure atomicity,
watch events firing once per batched write, quota charged per node (not
per batch), the deprecation shims, and the ambient-client invariant
(register/unregister pairing, including the migration-destination fix).
"""

import warnings

import pytest

from repro.faults.invariants import check_host
from repro.sim import Simulator
from repro.xenstore import (BatchNotCommitted, QuotaExceededError,
                            XenStoreCosts, XenStoreDaemon, XsClient)


def drive(sim, gen):
    """Run one generator to completion; return its value."""
    result = []

    def runner():
        result.append((yield from gen))
    sim.run(until=sim.process(runner()))
    return result[0]


def make_daemon(**kwargs):
    sim = Simulator()
    kwargs.setdefault("rng", None)
    return sim, XenStoreDaemon(sim, **kwargs)


# ----------------------------------------------------------------------
# Batch cost model
# ----------------------------------------------------------------------

class TestBatchCoalescing:
    def test_batch_is_one_charged_op(self):
        sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        with client.batch() as batch:
            for index in range(8):
                batch.write("/local/domain/1/d/%d" % index, "x")
            drive(sim, batch.commit())
        assert xs.stats["ops"] == 1
        assert xs.stats["batches"] == 1
        assert xs.stats["batched_ops"] == 8

    def test_batch_cheaper_than_sequential(self):
        elapsed = {}
        for batch_ops in (False, True):
            sim, xs = make_daemon(batch_ops=batch_ops)
            client = XsClient(xs)

            def run():
                with client.batch() as batch:
                    for index in range(10):
                        batch.write("/local/domain/1/d/%d" % index, "x")
                    yield from batch.commit()
            drive(sim, run())
            elapsed[batch_ops] = sim.now
        assert elapsed[True] < elapsed[False]
        # One round trip + 9 * batch_op_us, vs 10 round trips.
        costs = XenStoreCosts()
        assert elapsed[True] == pytest.approx(costs.batch_ms(10),
                                              rel=0.01)

    def test_batch_off_daemon_replays_sequentially(self):
        sim, xs = make_daemon(batch_ops=False)
        client = XsClient(xs)
        with client.batch() as batch:
            batch.write("/a", "1").mkdir("/b").rm("/a")
            modified = drive(sim, batch.commit())
        assert xs.stats["ops"] == 3
        assert xs.stats["batches"] == 0
        assert modified == ["/a", "/b", "/a"]
        assert not xs.tree.exists("/a") and xs.tree.exists("/b")

    def test_uncommitted_batch_raises(self):
        _sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        with pytest.raises(BatchNotCommitted):
            with client.batch() as batch:
                batch.write("/a", "1")
        # ...but an empty batch exits quietly.
        with client.batch():
            pass

    def test_batch_exception_in_block_wins_over_guard(self):
        _sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        with pytest.raises(RuntimeError, match="boom"):
            with client.batch() as batch:
                batch.write("/a", "1")
                raise RuntimeError("boom")


# ----------------------------------------------------------------------
# Batch atomicity + quota
# ----------------------------------------------------------------------

class TestBatchAtomicity:
    def test_partial_failure_applies_nothing(self):
        costs = XenStoreCosts(quota_nodes_per_domain=3)
        sim, xs = make_daemon(batch_ops=True, costs=costs)
        guest = XsClient(xs, domid=5)

        def run():
            with guest.batch() as batch:
                batch.write("/local/domain/5/a", "1")
                batch.write("/local/domain/5/b", "2")
                batch.write("/local/domain/5/c", "3")
                batch.write("/local/domain/5/d", "4")  # 4th node: over quota
                yield from batch.commit()
        with pytest.raises(QuotaExceededError):
            drive(sim, run())
        # Atomic: not even the in-quota prefix landed.
        for leaf in "abcd":
            assert not xs.tree.exists("/local/domain/5/%s" % leaf)
        assert xs._node_counts.get(5, 0) == 0

    def test_malformed_op_rejected_before_mutation(self):
        sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        batch = client.batch()
        batch.write("/x", "1")
        batch.ops.append(("chmod", "/x", None))  # forged kind
        with pytest.raises(ValueError):
            drive(sim, batch.commit())
        assert not xs.tree.exists("/x")

    def test_quota_charged_per_node_not_per_batch(self):
        costs = XenStoreCosts(quota_nodes_per_domain=100)
        sim, xs = make_daemon(batch_ops=True, costs=costs)
        guest = XsClient(xs, domid=7)

        def run():
            with guest.batch() as batch:
                for index in range(6):
                    batch.write("/local/domain/7/n%d" % index, "x")
                # Overwrites are not creations: stage one twice.
                batch.write("/local/domain/7/n0", "y")
                yield from batch.commit()
        drive(sim, run())
        assert xs._node_counts[7] == 6

    def test_quota_batch_matches_sequential_accounting(self):
        for batch_ops in (False, True):
            sim, xs = make_daemon(batch_ops=batch_ops)
            guest = XsClient(xs, domid=3)

            def run():
                with guest.batch() as batch:
                    batch.write("/local/domain/3/a", "1")
                    batch.write("/local/domain/3/a", "2")
                    batch.write("/local/domain/3/b", "3")
                    batch.rm("/local/domain/3/a")
                    yield from batch.commit()
            drive(sim, run())
            # a created then removed, b created: net one node either way.
            assert xs._node_counts[3] == 1, batch_ops
            assert not xs.tree.exists("/local/domain/3/a")
            assert xs.tree.exists("/local/domain/3/b")


# ----------------------------------------------------------------------
# Batched watches
# ----------------------------------------------------------------------

class TestBatchWatches:
    def fire_log(self, xs, path):
        fired = []

        def on_fire(event_path, token):
            fired.append(event_path)
        sim = xs.sim
        client = XsClient(xs)
        drive(sim, client.watch(path, "t", on_fire))
        return fired

    def test_watch_fires_once_per_batched_write(self):
        sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        fired = self.fire_log(xs, "/local/domain/9")

        def run():
            with client.batch() as batch:
                batch.write("/local/domain/9/a", "1")
                batch.write("/local/domain/9/b", "2")
                batch.write("/local/domain/9/a", "3")  # same node again
                yield from batch.commit()
        drive(sim, run())
        assert fired == ["/local/domain/9/a", "/local/domain/9/b",
                         "/local/domain/9/a"]

    def test_ineffective_rm_fires_no_watch(self):
        sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)
        fired = self.fire_log(xs, "/local/domain/9")

        def run():
            with client.batch() as batch:
                batch.rm("/local/domain/9/ghost")
                batch.write("/local/domain/9/real", "1")
                yield from batch.commit()
        drive(sim, run())
        assert fired == ["/local/domain/9/real"]


# ----------------------------------------------------------------------
# Transactions through the client
# ----------------------------------------------------------------------

class TestClientTransactions:
    @pytest.mark.parametrize("batch_ops", (False, True))
    def test_read_your_writes(self, batch_ops):
        """Staged writes are read-through; staged removals are invisible
        until commit (writes apply first, removals last) — oxenstored's
        modelled semantics, identical whether or not the client stages
        the ops for a batched flush."""
        sim, xs = make_daemon(batch_ops=batch_ops)
        client = XsClient(xs)
        seen = {}

        def body(txn):
            yield from txn.write("/vm/1/name", "alpha")
            seen["value"] = yield from txn.read("/vm/1/name")
            yield from txn.rm("/vm/1/name")
            seen["exists"] = yield from txn.exists("/vm/1/name")
            yield from txn.write("/vm/1/name", "beta")
        drive(sim, client.transaction(body))
        assert seen == {"value": "alpha", "exists": True}
        # Removals apply after writes at commit: the node is gone.
        assert not xs.tree.exists("/vm/1/name")

    def test_batched_txn_flush_is_one_round_trip(self):
        sim, xs = make_daemon(batch_ops=True)
        client = XsClient(xs)

        def body(txn):
            for index in range(5):
                yield from txn.write("/vm/2/e%d" % index, "x")
        drive(sim, client.transaction(body))
        # txn_start + one flushed batch + commit.
        assert xs.stats["ops"] == 3
        assert xs.stats["batches"] == 1
        assert xs.stats["commits"] == 1


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------

class TestDeprecationShims:
    def test_op_shims_warn_and_delegate(self):
        sim, xs = make_daemon()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            drive(sim, xs.op_write(0, "/legacy", "v"))
            value = drive(sim, xs.op_read(0, "/legacy"))
        assert value == "v"
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2
        assert "XsClient" in str(deprecations[0].message)

    def test_tx_shims_warn_and_delegate(self):
        sim, xs = make_daemon()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")

            def run():
                tx = yield from xs.transaction_start(0)
                yield from xs.tx_write(tx, "/t", "1")
                yield from xs.transaction_commit(tx)
            drive(sim, run())
        assert xs.tree.read("/t") == "1"
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_every_legacy_name_is_shimmed(self):
        from repro.xenstore.daemon import _LEGACY_NAMES
        for legacy, new in _LEGACY_NAMES.items():
            assert hasattr(XenStoreDaemon, legacy)
            assert hasattr(XenStoreDaemon, new)
            assert "Deprecated" in getattr(XenStoreDaemon, legacy).__doc__


# ----------------------------------------------------------------------
# Worker-pool parameter surface
# ----------------------------------------------------------------------

class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            XenStoreDaemon(Simulator(), workers=0)

    def test_worker_alias_is_first_shard(self):
        _sim, xs = make_daemon(workers=3)
        assert xs.worker is xs._shards[0]
        assert len(xs._shards) == 3

    def test_load_factor_divides_by_workers(self):
        _sim, one = make_daemon(workers=1)
        _sim2, four = make_daemon(workers=4)
        one.register_client(400.0)
        four.register_client(400.0)
        assert four._load_factor() < one._load_factor()

    def test_parallel_shards_overlap_in_time(self):
        """Two guests on different shards proceed concurrently; on one
        worker they serialize (the paper's bottleneck)."""
        elapsed = {}
        for workers in (1, 4):
            sim, xs = make_daemon(workers=workers)
            client = XsClient(xs)

            def guest(domid):
                for index in range(20):
                    yield from client.write(
                        "/local/domain/%d/k%d" % (domid, index), "x")
            for domid in (1, 2, 3, 4):
                sim.process(guest(domid))
            sim.run()
            elapsed[workers] = sim.now
        assert elapsed[4] < elapsed[1]
        assert elapsed[4] == pytest.approx(elapsed[1] / 4.0, rel=0.05)


# ----------------------------------------------------------------------
# Ambient-client invariant (register/unregister pairing)
# ----------------------------------------------------------------------

class TestAmbientInvariant:
    def test_create_destroy_cycle_balances(self):
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL

        host = Host(variant="chaos+xs", seed=3)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert host.xenstore.ambient_clients == pytest.approx(
            DAYTIME_UNIKERNEL.ambient_weight)
        assert check_host(host) == []
        host.destroy_vm(record.domain)
        assert host.xenstore.ambient_clients == 0.0
        assert check_host(host) == []

    def test_invariant_catches_unbalanced_register(self):
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL

        host = Host(variant="chaos+xs", seed=3)
        host.create_vm(DAYTIME_UNIKERNEL)
        host.xenstore.register_client(2.5)  # a leak
        violations = check_host(host)
        assert any("ambient_clients" in violation
                   for violation in violations)

    def test_migration_destination_registers_ambient_weight(self):
        """The PR-5 bugfix: a migrated-in guest must contribute ambient
        load on the destination daemon (it was silently weightless)."""
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL
        from repro.net import Link
        from repro.sim import Simulator as Sim
        from repro.toolstack import migrate

        sim = Sim()
        source = Host(variant="chaos+xs", seed=1, sim=sim)
        destination = Host(variant="chaos+xs", seed=2, sim=sim)
        config = source.config_for(DAYTIME_UNIKERNEL)
        record = source.create_vm(config)
        link = Link(sim)
        proc = sim.process(migrate(source.checkpointer,
                                   destination.checkpointer,
                                   record.domain, config, link))
        sim.run(until=proc)
        weight = DAYTIME_UNIKERNEL.ambient_weight
        assert destination.xenstore.ambient_clients == pytest.approx(weight)
        assert source.xenstore.ambient_clients == 0.0
        assert check_host(source) == []
        assert check_host(destination) == []
