"""Unit tests for the repro.cluster layer (config, placement,
controller, messages, node wiring, reproducer round-trip)."""

import json

import pytest

from repro.cluster import (CONTROLLER, Cluster, ClusterConfig,
                           ClusterConfigError, ClusterError,
                           ClusterMessage, Controller, Placement,
                           PlacementError, boot_storm, host_seed,
                           migration_churn, replay_reproducer,
                           run_cluster, sort_canonical)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------

class TestClusterConfig:
    def test_defaults_validate(self):
        ClusterConfig().validate()

    def test_lookahead_rule_enforced(self):
        config = ClusterConfig(epoch_ms=10.0, net_latency_ms=5.0)
        with pytest.raises(ClusterConfigError, match="lookahead"):
            config.validate()

    def test_epoch_equal_to_latency_is_legal(self):
        ClusterConfig(epoch_ms=5.0, net_latency_ms=5.0).validate()

    def test_zero_hosts_rejected(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(hosts=0).validate()

    def test_unknown_spec_rejected(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(spec="cray-1").validate()

    def test_unknown_image_rejected(self):
        with pytest.raises(Exception):
            ClusterConfig(image="no-such-image").validate()

    def test_round_trips_through_json(self):
        config = migration_churn(hosts=3, seed=7, guests=9,
                                 requests=12)
        payload = json.loads(json.dumps(config.to_dict()))
        assert ClusterConfig.from_dict(payload) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ClusterConfigError, match="unknown config"):
            ClusterConfig.from_dict({"hosts": 2, "warp_factor": 9})

    def test_requests_split_covers_budget(self):
        config = ClusterConfig(hosts=3, requests=10)
        shares = [config.requests_for(h) for h in range(3)]
        assert sum(shares) == 10
        assert max(shares) - min(shares) <= 1

    def test_host_seed_is_injective_nearby(self):
        seen = {host_seed(s, h) for s in range(4) for h in range(16)}
        assert len(seen) == 4 * 16

    def test_first_fit_pool_target_covers_full_storm(self):
        packed = ClusterConfig(hosts=4, guests=32,
                               placement="first-fit")
        spread = ClusterConfig(hosts=4, guests=32)
        assert packed.pool_target() >= 32
        assert spread.pool_target() < packed.pool_target()


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------

class TestMessages:
    @staticmethod
    def _msg(epoch, src, seq):
        return ClusterMessage(kind="up", src=src, dst=0, epoch=epoch,
                              seq=seq, send_ms=0.0, arrive_ms=5.0,
                              payload=())

    def test_canonical_order_is_epoch_src_seq(self):
        messages = [self._msg(1, 0, 0), self._msg(0, 2, 1),
                    self._msg(0, 2, 0), self._msg(0, CONTROLLER, 5)]
        ordered = sort_canonical(messages)
        assert [m.key() for m in ordered] == [
            (0, CONTROLLER, 5), (0, 2, 0), (0, 2, 1), (1, 0, 0)]

    def test_controller_sorts_before_every_host(self):
        assert self._msg(0, CONTROLLER, 9).key() < \
            self._msg(0, 0, 0).key()


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------

class TestPlacement:
    def test_first_fit_packs_lowest_index(self):
        p = Placement(3, capacity=2, policy="first-fit")
        assert [p.place() for _ in range(4)] == [0, 0, 1, 1]

    def test_least_loaded_spreads(self):
        p = Placement(3, capacity=4, policy="least-loaded")
        assert [p.place() for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_tie_breaks_to_lowest_host_index(self):
        p = Placement(4, capacity=4, policy="least-loaded")
        assert p.place() == 0

    def test_full_cluster_returns_none(self):
        p = Placement(2, capacity=1, policy="least-loaded")
        assert p.place() == 0 and p.place() == 1
        assert p.place() is None

    def test_release_frees_a_slot(self):
        p = Placement(1, capacity=1, policy="first-fit")
        assert p.place() == 0 and p.place() is None
        p.release(0)
        assert p.place() == 0

    def test_release_empty_host_raises(self):
        p = Placement(2, capacity=1, policy="first-fit")
        with pytest.raises(PlacementError):
            p.release(1)

    def test_move_transfers_load(self):
        p = Placement(2, capacity=2, policy="first-fit")
        p.place()
        p.move(0, 1)
        assert p.load == [0, 1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlacementError):
            Placement(2, capacity=1, policy="random")


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------

def _created(gid, src, epoch=0, seq=0):
    return ClusterMessage(kind="created", src=src, dst=CONTROLLER,
                          epoch=epoch, seq=seq, send_ms=0.0,
                          arrive_ms=0.0, payload=(gid,))


class TestController:
    def test_seed_barrier_issues_nothing_before_ramp(self):
        config = boot_storm(hosts=2, guests=4)
        controller = Controller(config)
        assert controller.barrier(-1, 0.0, []) == []
        assert not controller.done

    def test_creates_arrive_at_exact_ramp_instants(self):
        config = boot_storm(hosts=2, guests=4, create_start_ms=10.0,
                            create_spacing_ms=3.0)
        controller = Controller(config)
        out = []
        barrier = 0.0
        epoch = -1
        while controller._next_gid < 4:
            out.extend(controller.barrier(epoch, barrier, []))
            epoch += 1
            barrier = (epoch + 1) * config.epoch_ms
        creates = [m for m in out if m.kind == "create"]
        assert [m.arrive_ms for m in creates] == [10.0, 13.0, 16.0, 19.0]
        # least-loaded with the lowest-index tie-break alternates hosts
        assert [m.dst for m in creates] == [0, 1, 0, 1]
        # every create lands strictly inside the window after its barrier
        for m in creates:
            assert m.send_ms <= m.arrive_ms < m.send_ms + config.epoch_ms

    def test_completion_report_triggers_directory_broadcast(self):
        config = boot_storm(hosts=3, guests=1, create_start_ms=1.0)
        controller = Controller(config)
        controller.barrier(-1, 0.0, [])  # issues the single create
        out = controller.barrier(0, 5.0, [_created(0, src=0)])
        ups = [m for m in out if m.kind == "up"]
        assert [m.dst for m in ups] == [0, 1, 2]
        assert all(m.payload == (0, 0) for m in ups)
        assert all(m.arrive_ms == 5.0 + config.net_latency_ms
                   for m in ups)
        assert controller.done

    def test_failed_create_releases_placement(self):
        config = boot_storm(hosts=1, guests=1, create_start_ms=1.0)
        controller = Controller(config)
        controller.barrier(-1, 0.0, [])
        fail = ClusterMessage(kind="create_failed", src=0,
                              dst=CONTROLLER, epoch=0, seq=0,
                              send_ms=0.0, arrive_ms=0.0, payload=(0,))
        controller.barrier(0, 5.0, [fail])
        assert controller.placement.load == [0]
        assert controller.done

    def test_migration_waits_for_storm_to_settle(self):
        config = migration_churn(hosts=2, guests=2, migrations=1,
                                 create_start_ms=1.0,
                                 create_spacing_ms=1.0)
        controller = Controller(config)
        out = controller.barrier(-1, 0.0, [])
        assert not any(m.kind == "migrate_out" for m in out)
        out = controller.barrier(0, 5.0, [_created(0, src=0),
                                          _created(1, src=1, seq=1)])
        # churn starts only once every create resolved; the lowest-index
        # candidate host and its lowest gid are chosen deterministically
        migs = [m for m in out if m.kind == "migrate_out"]
        assert len(migs) == 1
        assert migs[0].dst == 0 and migs[0].payload == (0, 1)

    def test_migration_moves_from_most_to_least_loaded(self):
        config = migration_churn(hosts=2, guests=2, migrations=1,
                                 create_start_ms=1.0,
                                 create_spacing_ms=1.0,
                                 placement="first-fit")
        controller = Controller(config)
        controller.barrier(-1, 0.0, [])
        out = controller.barrier(0, 5.0, [_created(0, src=0),
                                          _created(1, src=0, seq=1)])
        migs = [m for m in out if m.kind == "migrate_out"]
        assert len(migs) == 1
        assert migs[0].dst == 0 and migs[0].payload == (0, 1)
        done = ClusterMessage(kind="migrated", src=1, dst=CONTROLLER,
                              epoch=1, seq=0, send_ms=0.0,
                              arrive_ms=0.0, payload=(0,))
        controller.barrier(1, 10.0, [done])
        assert controller.directory[0] == 1
        assert controller.stats["migrations_done"] == 1
        assert controller.done


# ----------------------------------------------------------------------
# Whole-cluster runs (inline backend)
# ----------------------------------------------------------------------

class TestClusterRuns:
    def test_boot_storm_boots_every_guest(self):
        result = run_cluster("boot-storm", hosts=3, guests=6)
        assert result.stats["booted"] == 6
        assert result.stats["create_failed"] == 0
        assert result.stats["guests_running"] == 6
        assert len(result.host_digests) == 3

    def test_requests_all_resolve(self):
        result = run_cluster("boot-storm", hosts=2, guests=4,
                             requests=30)
        stats = result.stats
        assert stats["requests_sent"] == 30
        assert stats["responses"] + stats["unrouted"] == 30

    def test_churn_completes_requested_migrations(self):
        result = run_cluster("migration-churn", hosts=3, guests=6,
                             migrations=2)
        assert result.stats["migrations_done"] + \
            result.stats["migrations_failed"] == 2

    def test_result_is_reproducible(self):
        first = run_cluster("boot-storm", hosts=2, guests=4, seed=3)
        second = run_cluster("boot-storm", hosts=2, guests=4, seed=3)
        assert first.digest == second.digest
        assert first.host_digests == second.host_digests

    def test_seed_changes_digest(self):
        # The seed enters through the RNG streams, so the scenario needs
        # stochastic traffic for seeds to produce distinct timelines.
        a = run_cluster("boot-storm", hosts=2, guests=4, requests=20,
                        seed=0)
        b = run_cluster("boot-storm", hosts=2, guests=4, requests=20,
                        seed=1)
        assert a.digest != b.digest

    def test_digest_combines_host_digests(self):
        from repro.analysis import combine_digests
        result = run_cluster("boot-storm", hosts=2, guests=4)
        assert result.digest == combine_digests(result.host_digests)

    def test_unknown_backend_rejected(self):
        config = boot_storm(hosts=2, guests=2)
        with pytest.raises(ClusterConfigError, match="backend"):
            Cluster(config, backend="gpu")

    def test_livelock_guard_raises(self):
        config = boot_storm(hosts=2, guests=4, max_epochs=3)
        with pytest.raises(ClusterError, match="no quiescence"):
            Cluster(config).run()


# ----------------------------------------------------------------------
# Reproducer JSON round-trip (chaos conventions)
# ----------------------------------------------------------------------

class TestReproducer:
    def test_replay_reproduces_recorded_digest(self):
        result = run_cluster("boot-storm", hosts=2, guests=4, seed=5,
                             requests=10)
        same, replayed = replay_reproducer(result.to_dict())
        assert same
        assert replayed.digest == result.digest

    def test_replay_detects_divergence(self):
        result = run_cluster("boot-storm", hosts=2, guests=4)
        payload = result.to_dict()
        payload["digest"] = "0" * 64
        same, _replayed = replay_reproducer(payload)
        assert not same

    def test_replay_rejects_unknown_version(self):
        result = run_cluster("boot-storm", hosts=2, guests=4)
        payload = result.to_dict()
        payload["version"] = 999
        with pytest.raises(ClusterConfigError, match="version"):
            replay_reproducer(payload)

    def test_reproducer_is_json_clean(self):
        result = run_cluster("migration-churn", hosts=2, guests=4,
                             migrations=1, requests=8)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["tool"] == "repro cluster"
        assert payload["digest"] == result.digest
