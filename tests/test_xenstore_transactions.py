"""Tests for XenStore optimistic transactions."""

import pytest

from repro.xenstore import (NoEntError, Transaction, TransactionConflict,
                            XenStoreTree)


def make_tx(tree, tx_id=1, domid=0):
    return Transaction(tree, tx_id, domid)


def test_commit_applies_writes_atomically():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.write("/a", "1")
    tx.write("/b", "2")
    assert not tree.exists("/a")
    modified = tx.commit()
    assert set(modified) == {"/a", "/b"}
    assert tree.read("/a") == "1"
    assert tree.read("/b") == "2"


def test_read_own_writes():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.write("/a", "staged")
    assert tx.read("/a") == "staged"


def test_read_missing_records_and_raises():
    tree = XenStoreTree()
    tx = make_tx(tree)
    with pytest.raises(NoEntError):
        tx.read("/ghost")
    assert "/ghost" in tx.read_set


def test_conflict_on_concurrent_write_to_read_node():
    tree = XenStoreTree()
    tree.write("/shared", "orig")
    tx = make_tx(tree)
    assert tx.read("/shared") == "orig"
    tree.write("/shared", "changed-by-other")  # concurrent writer
    tx.write("/out", "v")
    with pytest.raises(TransactionConflict):
        tx.commit()
    assert not tree.exists("/out")


def test_conflict_on_concurrent_write_to_written_node():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.write("/contested", "mine")
    tree.write("/contested", "theirs")
    with pytest.raises(TransactionConflict):
        tx.commit()
    assert tree.read("/contested") == "theirs"


def test_conflict_when_read_node_deleted():
    tree = XenStoreTree()
    tree.write("/x", "v")
    tx = make_tx(tree)
    tx.read("/x")
    tree.rm("/x")
    with pytest.raises(TransactionConflict):
        tx.commit()


def test_conflict_when_missing_node_appears():
    tree = XenStoreTree()
    tx = make_tx(tree)
    assert not tx.exists("/new")
    tree.write("/new", "appeared")
    tx.write("/other", "v")
    with pytest.raises(TransactionConflict):
        tx.commit()


def test_no_conflict_on_disjoint_activity():
    tree = XenStoreTree()
    tree.write("/mine", "v")
    tx = make_tx(tree)
    tx.read("/mine")
    tx.write("/mine/child", "c")
    tree.write("/unrelated", "other")
    tx.commit()
    assert tree.read("/mine/child") == "c"


def test_rm_inside_transaction():
    tree = XenStoreTree()
    tree.write("/victim", "v")
    tx = make_tx(tree)
    tx.rm("/victim")
    tx.commit()
    assert not tree.exists("/victim")


def test_rm_of_missing_node_is_noop_on_commit():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.rm("/ghost")
    tx.commit()  # should not raise


def test_abort_discards_writes():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.write("/a", "1")
    tx.abort()
    assert not tree.exists("/a")


def test_finished_transaction_rejects_operations():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.commit()
    with pytest.raises(RuntimeError):
        tx.write("/a", "1")
    with pytest.raises(RuntimeError):
        tx.commit()


def test_exists_sees_staged_writes():
    tree = XenStoreTree()
    tx = make_tx(tree)
    tx.write("/staged", "v")
    assert tx.exists("/staged")


def test_retry_after_conflict_succeeds():
    """The standard client loop: conflict, then a fresh transaction wins."""
    tree = XenStoreTree()
    tree.write("/shared", "orig")
    tx1 = make_tx(tree, tx_id=1)
    tx1.read("/shared")
    tree.write("/shared", "interference")
    tx1.write("/result", "a")
    with pytest.raises(TransactionConflict):
        tx1.commit()
    tx2 = make_tx(tree, tx_id=2)
    tx2.read("/shared")
    tx2.write("/result", "b")
    tx2.commit()
    assert tree.read("/result") == "b"
