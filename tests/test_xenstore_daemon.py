"""Tests for the XenStore daemon: protocol costs, queueing, transactions."""

import pytest

from repro.sim import Simulator
from repro.xenstore import (DuplicateNameError, TransactionConflict,
                            XenStoreCosts, XenStoreDaemon)


def run_op(sim, gen):
    """Drive a daemon operation generator inside a process."""
    def wrapper():
        result = yield from gen
        return result
    proc = sim.process(wrapper())
    return sim.run(until=proc)


def make_daemon(**kwargs):
    sim = Simulator()
    return sim, XenStoreDaemon(sim, **kwargs)


def test_write_then_read():
    sim, xs = make_daemon()
    run_op(sim, xs.write(0, "/local/domain/1/name", "vm1"))
    value = run_op(sim, xs.read(0, "/local/domain/1/name"))
    assert value == "vm1"


def test_ops_take_simulated_time():
    sim, xs = make_daemon()
    run_op(sim, xs.write(0, "/a", "1"))
    assert sim.now > 0
    assert sim.now == pytest.approx(xs.costs.op_base_ms(), rel=0.5)


def test_ops_counted():
    sim, xs = make_daemon()
    run_op(sim, xs.write(0, "/a", "1"))
    run_op(sim, xs.read(0, "/a"))
    assert xs.stats["ops"] == 2


def test_cxenstored_slower_than_oxenstored():
    sim_o, xs_o = make_daemon(implementation="oxenstored")
    run_op(sim_o, xs_o.write(0, "/a", "1"))
    sim_c, xs_c = make_daemon(implementation="cxenstored")
    run_op(sim_c, xs_c.write(0, "/a", "1"))
    assert sim_c.now > sim_o.now


def test_unknown_implementation_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        XenStoreDaemon(sim, implementation="rustystore")


def test_ambient_clients_inflate_latency():
    sim_idle, xs_idle = make_daemon()
    run_op(sim_idle, xs_idle.write(0, "/a", "1"))
    sim_busy, xs_busy = make_daemon()
    for _ in range(1000):
        xs_busy.register_client()
    run_op(sim_busy, xs_busy.write(0, "/a", "1"))
    assert sim_busy.now > sim_idle.now * 1.5


def test_load_factor_capped():
    _sim, xs = make_daemon()
    for _ in range(10 ** 6):
        xs.register_client()
    assert xs._load_factor() <= 1.0 / (1.0 - xs.costs.ambient_util_cap) + 1e-9
    assert xs._load_factor() < float("inf")


def test_unregister_client_floor_at_zero():
    _sim, xs = make_daemon()
    xs.unregister_client()
    assert xs.ambient_clients == 0


def test_watch_registration_and_delivery():
    sim, xs = make_daemon()
    hits = []
    run_op(sim, xs.watch(0, "/backend/vif", "tok",
                            lambda p, t: hits.append(p)))
    run_op(sim, xs.write(0, "/backend/vif/1/0", "new"))
    assert hits == ["/backend/vif/1/0"]
    assert xs.stats["watch_events"] == 1


def test_more_watches_cost_more_time():
    def timed_write(n_watches):
        sim, xs = make_daemon()
        for i in range(n_watches):
            run_op(sim, xs.watch(0, "/w/%d" % i, "t", lambda p, t: None))
        start = sim.now
        run_op(sim, xs.write(0, "/target", "v"))
        return sim.now - start

    assert timed_write(2000) > timed_write(0)


def test_unique_name_check_passes_and_fails():
    sim, xs = make_daemon()
    run_op(sim, xs.write(0, "/local/domain/1/name", "alpha"))
    run_op(sim, xs.check_unique_name(0, "beta"))  # ok
    with pytest.raises(DuplicateNameError):
        run_op(sim, xs.check_unique_name(0, "alpha"))


def test_unique_name_check_cost_scales_with_domains():
    def timed_check(n_domains):
        sim, xs = make_daemon()
        for i in range(n_domains):
            xs.tree.write("/local/domain/%d/name" % i, "vm%d" % i)
        start = sim.now
        run_op(sim, xs.check_unique_name(0, "fresh"))
        return sim.now - start

    assert timed_check(1000) > timed_check(1)


def test_transaction_through_daemon():
    sim, xs = make_daemon()

    def flow():
        tx = yield from xs.transaction_start(0)
        yield from xs.txn_write(tx, "/device/a", "1")
        yield from xs.txn_write(tx, "/device/b", "2")
        yield from xs.transaction_commit(tx)

    proc = sim.process(flow())
    sim.run(until=proc)
    assert xs.tree.read("/device/a") == "1"
    assert xs.stats["commits"] == 1


def test_transaction_conflict_counted_and_raised():
    sim, xs = make_daemon()
    xs.tree.write("/shared", "orig")

    def flow():
        tx = yield from xs.transaction_start(0)
        yield from xs.txn_read(tx, "/shared")
        # Interference arrives while the transaction is open.
        xs.tree.write("/shared", "other")
        yield from xs.txn_write(tx, "/out", "v")
        try:
            yield from xs.transaction_commit(tx)
        except TransactionConflict:
            return "conflicted"
        return "committed"

    proc = sim.process(flow())
    assert sim.run(until=proc) == "conflicted"
    assert xs.stats["conflicts"] == 1


def test_log_rotation_stalls_request():
    costs = XenStoreCosts(log_rotation_ms=50.0)
    sim, xs = make_daemon(costs=costs)
    xs.log.rotate_lines = 5
    durations = []
    for i in range(6):
        start = sim.now
        run_op(sim, xs.read(0, "/"))  # reads of root are fine
        durations.append(sim.now - start)
    # One of the six requests hit the rotation and took >= 50 ms extra.
    assert max(durations) >= 50.0
    assert xs.stats["rotation_stalls"] >= 1


def test_log_disabled_no_stalls():
    sim, xs = make_daemon(log_enabled=False)
    xs.log.rotate_lines = 2
    for _ in range(10):
        run_op(sim, xs.read(0, "/"))
    assert xs.stats["rotation_stalls"] == 0


def test_rm_returns_removed_count():
    sim, xs = make_daemon()
    run_op(sim, xs.write(0, "/d/a", "1"))
    run_op(sim, xs.write(0, "/d/b", "2"))
    removed = run_op(sim, xs.rm(0, "/d"))
    assert removed == 3
    assert run_op(sim, xs.rm(0, "/d")) == 0


def test_requests_serialize_on_single_worker():
    sim, xs = make_daemon()
    finish_times = []

    def client(i):
        yield from xs.write(0, "/c%d" % i, "v")
        finish_times.append(sim.now)

    for i in range(3):
        sim.process(client(i))
    sim.run()
    # Strictly increasing completion times: no two ops overlap.
    assert finish_times == sorted(finish_times)
    assert len(set(finish_times)) == 3
