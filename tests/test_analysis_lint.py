"""Tests for the determinism linter (repro.analysis.lint)."""

import pathlib
import textwrap

from repro.analysis import lint_paths, lint_source, render_findings
from repro.analysis.lint import RULES, LintRule, register


def ids(source, path="mod.py"):
    return [f.rule_id for f in lint_source(textwrap.dedent(source), path)]


class TestAmbientRandomness:
    def test_import_random_flagged(self):
        assert ids("import random\n") == ["RPR001"]

    def test_from_random_flagged(self):
        assert ids("from random import choice\n") == ["RPR001"]

    def test_secrets_and_uuid_flagged(self):
        assert ids("import secrets\nimport uuid\n") == ["RPR001",
                                                        "RPR001"]

    def test_os_urandom_flagged(self):
        assert ids("import os\nx = os.urandom(8)\n") == ["RPR001"]

    def test_rng_stream_usage_clean(self):
        assert ids("from repro.sim.rng import RngStream\n"
                   "x = RngStream(0, 'a').random()\n") == []


class TestWallClock:
    def test_import_time_flagged(self):
        assert ids("import time\n") == ["RPR002"]

    def test_datetime_now_flagged(self):
        found = ids("import datetime\nt = datetime.now()\n")
        assert found == ["RPR002", "RPR002"]

    def test_sim_now_clean(self):
        assert ids("def f(sim):\n    return sim.now\n") == []


class TestSetIteration:
    def test_for_over_set_literal(self):
        assert ids("for x in {1, 2}:\n    pass\n") == ["RPR003"]

    def test_for_over_set_call(self):
        assert ids("for x in set([1, 2]):\n    pass\n") == ["RPR003"]

    def test_for_over_name_assigned_set(self):
        assert ids("s = set()\nfor x in s:\n    pass\n") == ["RPR003"]

    def test_name_inferred_from_add_calls(self):
        src = """
        def f(s):
            s.add(1)
            for x in s:
                pass
        """
        assert ids(src) == ["RPR003"]

    def test_set_difference_flagged(self):
        src = "a = set()\nb = set()\nfor x in a - b:\n    pass\n"
        assert ids(src) == ["RPR003"]

    def test_comprehension_over_set(self):
        assert ids("xs = [x for x in {1, 2}]\n") == ["RPR003"]

    def test_list_materialisation_flagged(self):
        assert ids("xs = list({1, 2})\n") == ["RPR003"]

    def test_sorted_wrapper_clean(self):
        assert ids("for x in sorted({1, 2}):\n    pass\n") == []

    def test_membership_checks_clean(self):
        src = """
        def f(items):
            seen = set()
            for item in items:
                if item in seen:
                    continue
                seen.add(item)
        """
        assert ids(src) == []


class TestDictViewIteration:
    def test_view_feeding_sim_sink_flagged(self):
        src = """
        def f(sim, d):
            for key in d.keys():
                sim.schedule(1.0, print, key)
        """
        assert ids(src) == ["RPR004"]

    def test_view_with_yield_in_body_flagged(self):
        src = """
        def f(sim, d):
            for key, value in d.items():
                yield sim.timeout(1.0)
        """
        assert ids(src) == ["RPR004"]

    def test_plain_view_iteration_clean(self):
        src = """
        def f(d):
            total = 0
            for value in d.values():
                total += value
            return total
        """
        assert ids(src) == []


class TestIdOrdering:
    def test_sorted_key_id_flagged(self):
        assert ids("xs = sorted(ys, key=id)\n") == ["RPR005"]

    def test_id_in_lambda_key_flagged(self):
        assert ids("xs = sorted(ys, key=lambda y: id(y))\n") == ["RPR005"]

    def test_id_comparison_flagged(self):
        assert ids("flag = id(a) < id(b)\n") == ["RPR005"]

    def test_id_in_repr_format_clean(self):
        src = """
        def __repr__(self):
            return "<obj at {:#x}>".format(id(self))
        """
        assert ids(src) == []


class TestClockDrift:
    def test_now_augassign_flagged(self):
        src = """
        class Sim:
            def advance(self, delta):
                self._now += delta
        """
        assert ids(src) == ["RPR006"]

    def test_plain_counter_clean(self):
        assert ids("count = 0\ncount += 1\n") == []

    def test_absolute_assignment_clean(self):
        src = """
        class Sim:
            def advance(self, when):
                self._now = when
        """
        assert ids(src) == []


class TestMutableDefaults:
    def test_list_default_flagged(self):
        assert ids("def f(x=[]):\n    return x\n") == ["RPR007"]

    def test_dict_and_set_call_defaults_flagged(self):
        assert ids("def f(a={}, b=set()):\n    pass\n") == ["RPR007",
                                                            "RPR007"]

    def test_none_default_clean(self):
        assert ids("def f(x=None, y=()):\n    pass\n") == []


class TestKernelClosure:
    KERNEL = "src/repro/sim/engine.py"

    def test_lambda_to_add_callback_flagged(self):
        src = "def f(event):\n" \
              "    event.add_callback(lambda _evt: None)\n"
        assert ids(src, self.KERNEL) == ["RPR008"]

    def test_lambda_to_schedule_flagged(self):
        src = "def f(sim, cb):\n" \
              "    sim.schedule(1.0, lambda: cb())\n"
        assert ids(src, self.KERNEL) == ["RPR008"]

    def test_lambda_appended_to_callbacks_flagged(self):
        src = "def f(event, cb):\n" \
              "    event.callbacks.append(lambda _evt: cb())\n"
        assert ids(src, self.KERNEL) == ["RPR008"]

    def test_tuple_protocol_clean(self):
        src = "def f(event, cb, args):\n" \
              "    event.callbacks.append((cb, args))\n"
        assert ids(src, self.KERNEL) == []

    def test_non_kernel_module_out_of_scope(self):
        src = "def f(event):\n" \
              "    event.add_callback(lambda _evt: None)\n"
        assert ids(src, "src/repro/core/host.py") == []

    def test_justified_noqa_silences(self):
        src = ("def f(event):\n"
               "    event.add_callback(lambda _evt: None)"
               "  # noqa: RPR008 -- cold path, runs once per sim\n")
        assert ids(src, self.KERNEL) == []


class TestSuppression:
    def test_justified_noqa_silences(self):
        assert ids("import random  # noqa: RPR001 -- test fixture\n") == []

    def test_unjustified_noqa_becomes_rpr000(self):
        assert ids("import random  # noqa: RPR001\n") == ["RPR000"]

    def test_bare_noqa_with_reason_silences_all(self):
        assert ids("import random  # noqa -- vendored helper\n") == []

    def test_noqa_for_other_rule_does_not_silence(self):
        assert ids("import random  # noqa: RPR003 -- wrong code\n") \
            == ["RPR001"]


class TestDrivers:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert [f.rule_id for f in findings] == ["RPR999"]

    def test_lint_paths_recurses_directories(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text("x = 1\n")
        (package / "dirty.py").write_text("import random\n")
        findings = lint_paths([package])
        assert [f.rule_id for f in findings] == ["RPR001"]
        assert findings[0].path.endswith("dirty.py")

    def test_render_includes_summary(self):
        findings = lint_source("import random\nimport time\n", "m.py")
        text = render_findings(findings)
        assert "RPR001 x1" in text
        assert "RPR002 x1" in text
        assert "2 finding(s)" in text

    def test_render_clean(self):
        assert render_findings([]) == "0 findings"

    def test_rules_are_pluggable(self):
        class NoTodoRule(LintRule):
            id = "RPRTST"
            severity = "warning"
            synopsis = "test-only rule"

            def check(self, module):
                for index, line in enumerate(module.lines):
                    if "TODO" in line:
                        yield self.finding(module, module.tree,
                                           "todo found")

        rule = NoTodoRule()
        findings = lint_source("x = 1  # TODO later\n", "m.py",
                               rules=[rule])
        assert [f.rule_id for f in findings] == ["RPRTST"]

    def test_register_decorator_appends(self):
        before = len(RULES)

        @register
        class Temporary(LintRule):
            id = "RPRTMP"

            def check(self, module):
                return iter(())

        try:
            assert len(RULES) == before + 1
        finally:
            RULES.pop()

    def test_repo_package_is_clean(self):
        """The shipped tree must lint clean — the CI gate's guarantee."""
        package = pathlib.Path(__file__).resolve().parents[1] / "src" / \
            "repro"
        assert render_findings(lint_paths([package])) == "0 findings"


class TestRealConcurrency:
    def test_import_threading_flagged(self):
        assert ids("import threading\n") == ["RPR010"]

    def test_from_multiprocessing_flagged(self):
        assert ids("from multiprocessing import Pool\n") == ["RPR010"]

    def test_asyncio_and_futures_flagged(self):
        found = ids("import asyncio\nimport concurrent.futures\n")
        assert found == ["RPR010", "RPR010"]

    def test_cluster_procs_backend_exempt(self):
        # A sanctioned real-concurrency site: the procs backend.
        assert ids("import multiprocessing\n",
                   path="src/repro/cluster/procs.py") == []

    def test_stdlib_sweep_runner_exempt(self):
        # The other sanctioned site: the multi-seed sweep runner, which
        # fans whole (spec, seed) scenario runs out over OS processes.
        assert ids("import multiprocessing\n",
                   path="src/repro/stdlib/sweep.py") == []

    def test_cluster_scenario_modules_still_banned(self):
        # The exemption is the runner alone — cluster coordination and
        # scenario code stays inside the deterministic timeline.
        for path in ("src/repro/cluster/node.py",
                     "src/repro/cluster/cluster.py",
                     "src/repro/cluster/controller.py"):
            assert ids("import multiprocessing\n", path=path) == \
                ["RPR010"], path

    def test_stdlib_scenario_modules_still_banned(self):
        # Same narrowing for the stdlib: spec resolution and the
        # scenario runner execute inside the DES timeline.
        for path in ("src/repro/stdlib/spec.py",
                     "src/repro/stdlib/runner.py",
                     "src/repro/stdlib/library.py"):
            assert ids("import threading\n", path=path) == \
                ["RPR010"], path

    def test_sim_modules_still_banned(self):
        # Regression pin for the allowlist narrowing: the DES kernel must
        # never regain access to real concurrency.
        for path in ("src/repro/sim/engine.py",
                     "src/repro/sim/process.py"):
            assert ids("import threading\n", path=path) == ["RPR010"], path

    def test_justified_noqa_suppresses(self):
        assert ids("import threading  # noqa: RPR010 -- artifact "
                   "post-processing only, never touches the timeline\n"
                   ) == []

    def test_des_primitives_clean(self):
        assert ids("def f(sim):\n"
                   "    return sim.process(worker(sim))\n") == []


class TestRuleRegistry:
    def test_find_rule_returns_registered_rule(self):
        from repro.analysis.lint import find_rule
        assert find_rule("RPR010").id == "RPR010"

    def test_find_rule_unknown_id_raises(self):
        import pytest

        from repro.analysis.lint import find_rule
        with pytest.raises(KeyError):
            find_rule("RPR404")

    def test_duplicate_id_rejected_loudly(self):
        import pytest

        from repro.analysis.lint import DuplicateRuleError
        before = len(RULES)
        with pytest.raises(DuplicateRuleError):
            @register
            class Shadow(LintRule):
                id = "RPR001"

                def check(self, module):
                    return iter(())
        assert len(RULES) == before  # nothing half-registered


class TestOutputFormats:
    def test_json_format_round_trips(self):
        import json

        from repro.analysis.lint import format_findings
        findings = lint_source("import random\n", "m.py")
        payload = json.loads(format_findings(findings, "json"))
        assert payload[0]["rule_id"] == "RPR001"
        assert payload[0]["path"] == "m.py"
        assert payload[0]["line"] == 1

    def test_github_format_annotations(self):
        from repro.analysis.lint import format_findings
        findings = lint_source("import random\n", "m.py")
        text = format_findings(findings, "github")
        assert text.startswith("::error file=m.py,line=1,col=1,"
                               "title=RPR001::")
        assert "1 finding(s)" in text

    def test_github_format_escapes_newlines(self):
        import dataclasses

        from repro.analysis.lint import Finding, findings_to_github
        finding = Finding(rule_id="RPR001", severity="error", path="m.py",
                          line=1, col=0, message="two\nlines")
        assert "%0A" in findings_to_github([finding])

    def test_text_format_is_default(self):
        from repro.analysis.lint import format_findings
        assert format_findings([], "text") == "0 findings"

    def test_unknown_format_rejected(self):
        import pytest

        from repro.analysis.lint import format_findings
        with pytest.raises(ValueError):
            format_findings([], "yaml")
