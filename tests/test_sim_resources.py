"""Tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2


def test_resource_release_wakes_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered
    assert not third.triggered
    res.release(second)
    assert third.triggered


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    queued = res.request()
    res.release(queued)  # cancels it
    res.release(held)
    assert not queued.triggered
    assert res.count == 0


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(log, name):
        with res.request() as req:
            yield req
            log.append((name, "in", sim.now))
            yield 2.0
        log.append((name, "out", sim.now))

    log = []
    sim.process(user(log, "a"))
    sim.process(user(log, "b"))
    sim.run()
    assert log == [("a", "in", 0.0), ("a", "out", 2.0),
                   ("b", "in", 2.0), ("b", "out", 4.0)]


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    evt = store.get()
    assert evt.triggered
    assert evt.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    sim.process(consumer())
    sim.schedule(3.0, store.put, "late")
    sim.run()
    assert got == [("late", 3.0)]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2


def test_store_waiters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    g1, g2 = store.get(), store.get()
    store.put("a")
    store.put("b")
    assert g1.value == "a"
    assert g2.value == "b"


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(9)
    assert store.try_get() == 9
    assert len(store) == 0
