"""Tests for deterministic named RNG streams."""

from repro.sim import RngRegistry, RngStream


def test_same_seed_same_name_same_sequence():
    a = RngStream(1, "xenstore")
    b = RngStream(1, "xenstore")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    a = RngStream(1, "xenstore")
    b = RngStream(1, "docker")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngStream(1, "xenstore")
    b = RngStream(2, "xenstore")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_registry_caches_streams():
    reg = RngRegistry(seed=7)
    assert reg.stream("a") is reg.stream("a")
    assert reg.stream("a") is not reg.stream("b")


def test_registry_streams_deterministic_across_instances():
    r1 = RngRegistry(seed=7)
    r2 = RngRegistry(seed=7)
    assert r1.stream("x").random() == r2.stream("x").random()


# ----------------------------------------------------------------------
# Stream-derivation edge cases
# ----------------------------------------------------------------------

def test_seed_zero_is_a_real_seed():
    """Seed 0 must not collapse to some unseeded default, and must
    differ from every other seed."""
    a = RngStream(0, "xenstore")
    b = RngStream(0, "xenstore")
    c = RngStream(1, "xenstore")
    seq_a = [a.random() for _ in range(5)]
    assert seq_a == [b.random() for _ in range(5)]
    assert seq_a != [c.random() for _ in range(5)]


def test_negative_seed_is_distinct():
    assert RngStream(-1, "x").random() != RngStream(1, "x").random()


def test_unicode_names_derive_stable_streams():
    name = "xenstore/événements-模拟"
    a = RngStream(3, name)
    b = RngStream(3, name)
    assert a.name == name
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
    assert RngStream(3, name).random() != RngStream(3, "ascii").random()


def test_seed_name_concatenation_is_unambiguous():
    """(1, "2/x") and (12, "x") both flatten near "12/x"; the "<seed>/"
    prefix keeps them distinct because seed digits cannot contain '/'."""
    assert RngStream(1, "2/x").random() != RngStream(12, "x").random()


def test_duplicate_names_from_one_registry_share_state():
    """The registry is the dedupe point: asking twice for a name hands
    back the *same* stream object (advancing, not replaying)."""
    reg = RngRegistry(seed=5)
    first = reg.stream("dup").random()
    second = reg.stream("dup").random()
    # The cached stream advances through the same sequence a single
    # fresh stream would produce — it does not restart per lookup.
    fresh = RngStream(5, "dup")
    assert first == fresh.random()
    assert second == fresh.random()
    assert reg.stream("dup") is reg.stream("dup")


def test_duplicate_derivation_outside_registry_is_correlated():
    """Two independently-constructed streams for the same (seed, name)
    replay each other draw-for-draw — the hazard the sanitizer's
    stream-collision check exists to catch."""
    a = RngStream(9, "shared")
    b = RngStream(9, "shared")
    assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]


def test_empty_name_is_valid_and_distinct():
    assert RngStream(1, "").random() != RngStream(1, "x").random()
