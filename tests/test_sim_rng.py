"""Tests for deterministic named RNG streams."""

from repro.sim import RngRegistry, RngStream


def test_same_seed_same_name_same_sequence():
    a = RngStream(1, "xenstore")
    b = RngStream(1, "xenstore")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    a = RngStream(1, "xenstore")
    b = RngStream(1, "docker")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngStream(1, "xenstore")
    b = RngStream(2, "xenstore")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_registry_caches_streams():
    reg = RngRegistry(seed=7)
    assert reg.stream("a") is reg.stream("a")
    assert reg.stream("a") is not reg.stream("b")


def test_registry_streams_deterministic_across_instances():
    r1 = RngRegistry(seed=7)
    r2 = RngRegistry(seed=7)
    assert r1.stream("x").random() == r2.stream("x").random()
