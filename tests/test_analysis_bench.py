"""Tests for the bench-trend / bench-gate tooling (repro.analysis.bench)."""

import json

import pytest

from repro.analysis import (BenchResultError, bench_gate, bench_trend,
                            figure_gate, load_results)


def write_result(directory, figure, wall_clock_s=1.0, scale="quick",
                 data=None, name=None):
    payload = {"figure": figure, "title": figure.upper(), "scale": scale,
               "wall_clock_s": wall_clock_s, "data": data or {}}
    path = directory / (name or "BENCH_%s.json" % figure)
    path.write_text(json.dumps(payload))
    return path


class TestLoadResults:
    def test_directory_globs_bench_files(self, tmp_path):
        write_result(tmp_path, "fig04")
        write_result(tmp_path, "fig10")
        (tmp_path / "unrelated.json").write_text("{}")
        results = load_results(tmp_path)
        assert sorted(results) == ["fig04", "fig10"]

    def test_single_file(self, tmp_path):
        path = write_result(tmp_path, "engine")
        results = load_results(path)
        assert list(results) == ["engine"]

    def test_missing_location_raises(self, tmp_path):
        with pytest.raises(BenchResultError):
            load_results(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(BenchResultError):
            load_results(tmp_path)

    def test_unparsable_json_raises(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(BenchResultError):
            load_results(tmp_path)

    def test_missing_figure_field_raises(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text('{"title": "no id"}')
        with pytest.raises(BenchResultError):
            load_results(tmp_path)


class TestBenchTrend:
    def test_delta_percentage(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        write_result(old_dir, "fig10", wall_clock_s=4.0)
        write_result(new_dir, "fig10", wall_clock_s=1.0)
        text = bench_trend(load_results(old_dir), load_results(new_dir))
        assert "fig10" in text
        assert "-75.0%" in text

    def test_new_and_gone_figures(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        write_result(old_dir, "fig04", wall_clock_s=2.0)
        write_result(new_dir, "fig10", wall_clock_s=1.0)
        text = bench_trend(load_results(old_dir), load_results(new_dir))
        assert "gone" in text
        assert "new" in text

    def test_missing_wall_clock_renders_dash(self):
        old = {"fig04": {"figure": "fig04", "scale": "quick"}}
        new = {"fig04": {"figure": "fig04", "scale": "quick"}}
        text = bench_trend(old, new)
        assert text.splitlines()[1].split()[1] == "-"

    def test_one_sided_metric_reported_as_added(self):
        old = {"eng": {"figure": "eng", "wall_clock_s": 1.0, "data": {}}}
        new = {"eng": {"figure": "eng", "wall_clock_s": 1.0,
                       "data": {"cluster_scaling":
                                {"opt_events_per_sec": 100.0}}}}
        text = bench_trend(old, new)
        assert "eng/cluster_scaling" in text
        assert "added" in text

    def test_one_sided_metric_reported_as_removed(self):
        old = {"eng": {"figure": "eng", "wall_clock_s": 1.0,
                       "data": {"timer_wheel": 3.0}}}
        new = {"eng": {"figure": "eng", "wall_clock_s": 1.0, "data": {}}}
        text = bench_trend(old, new)
        assert "eng/timer_wheel" in text
        assert "removed" in text

    def test_shared_metric_reports_delta(self):
        old = {"eng": {"figure": "eng", "wall_clock_s": 1.0,
                       "data": {"m": {"opt_events_per_sec": 100.0}}}}
        new = {"eng": {"figure": "eng", "wall_clock_s": 1.0,
                       "data": {"m": {"opt_events_per_sec": 150.0}}}}
        text = bench_trend(old, new)
        assert "+50.0%" in text

    def test_one_sided_shapes_never_raise(self):
        # Regression pin: a brand-new BENCH_*.json with metrics the
        # baseline set has never seen (or a retired one) must diff, not
        # crash the perf-smoke job.
        old = {"a": {"figure": "a", "wall_clock_s": 1.0,
                     "data": {"only_old": 1.0,
                              "odd_shape": ["not", "a", "scalar"]}}}
        new = {"b": {"figure": "b", "wall_clock_s": 2.0,
                     "data": {"only_new": {"weird": True}}}}
        text = bench_trend(old, new)
        assert "a/only_old" in text and "removed" in text
        assert "b/only_new" in text and "added" in text

    def test_no_data_metrics_omits_section(self):
        old = {"fig04": {"figure": "fig04", "wall_clock_s": 1.0}}
        new = {"fig04": {"figure": "fig04", "wall_clock_s": 1.0}}
        assert "data metrics" not in bench_trend(old, new)


BASELINE = {"metric": "timer_wheel", "required_speedup": 2.0,
            "events_per_sec": 800_000, "tolerance": 0.5}


def engine_result(opt, ref):
    return {"figure": "engine",
            "data": {"timer_wheel": {"opt_events_per_sec": opt,
                                     "ref_events_per_sec": ref,
                                     "speedup": opt / ref}}}


class TestBenchGate:
    def test_pass(self):
        passed, report = bench_gate(engine_result(900_000, 400_000),
                                    BASELINE)
        assert passed
        assert "PASS" in report

    def test_speedup_shortfall_fails_with_percentage(self):
        passed, report = bench_gate(engine_result(600_000, 400_000),
                                    BASELINE)
        assert not passed
        assert "FAIL" in report
        assert "25.0%" in report  # 1.5x vs required 2.0x

    def test_absolute_floor_fails_with_regression_pct(self):
        # Speedup fine (2.5x) but throughput collapsed below the band.
        passed, report = bench_gate(engine_result(250_000, 100_000),
                                    BASELINE)
        assert not passed
        assert "below the committed" in report
        # (800k - 250k) / 800k = 68.75% regression.
        assert "68.8%" in report

    def test_missing_metric_fails_loudly(self):
        passed, report = bench_gate({"figure": "engine", "data": {}},
                                    BASELINE)
        assert not passed
        assert "timer_wheel" in report


MULTI_BASELINE = {
    "metric": "timer_wheel", "required_speedup": 2.0,
    "events_per_sec": 800_000, "tolerance": 0.5,
    "gated_metrics": {
        "timer_wheel": {},
        "process_chain": {"required_speedup": 2.0,
                          "events_per_sec": 900_000},
    },
}


def multi_result(wheel_opt, chain_opt, ref=400_000):
    return {"figure": "engine",
            "data": {name: {"opt_events_per_sec": opt,
                            "ref_events_per_sec": ref,
                            "speedup": opt / ref}
                     for name, opt in (("timer_wheel", wheel_opt),
                                       ("process_chain", chain_opt))}}


class TestBenchGateMultiMetric:
    def test_all_gated_metrics_pass(self):
        passed, report = bench_gate(multi_result(900_000, 950_000),
                                    MULTI_BASELINE)
        assert passed
        assert report.count("PASS") == 2
        assert "timer_wheel" in report and "process_chain" in report

    def test_one_shape_regressing_fails_the_gate(self):
        # timer_wheel is fine (2.25x); process_chain sits at 1.5x.
        passed, report = bench_gate(multi_result(900_000, 600_000),
                                    MULTI_BASELINE)
        assert not passed
        assert "process_chain" in report
        assert "25.0%" in report  # 1.5x vs required 2.0x

    def test_per_metric_absolute_floor_applies(self):
        # Both speedups pass but process_chain collapsed below its own
        # committed band (900k * 0.5 = 450k floor).
        passed, report = bench_gate(multi_result(900_000, 440_000,
                                                 ref=200_000),
                                    MULTI_BASELINE)
        assert not passed
        assert "below the committed" in report

    def test_gated_metric_missing_from_result_fails(self):
        result = {"figure": "engine",
                  "data": {"timer_wheel": {"opt_events_per_sec": 900_000,
                                           "ref_events_per_sec": 400_000,
                                           "speedup": 2.25}}}
        passed, report = bench_gate(result, MULTI_BASELINE)
        assert not passed
        assert "process_chain" in report
        assert "no data" in report


class TestCommittedBaseline:
    def test_baseline_file_is_wellformed(self):
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[1] / \
            "benchmarks" / "baseline_engine.json"
        baseline = json.loads(path.read_text())
        assert baseline["metric"] == "timer_wheel"
        assert baseline["required_speedup"] >= 2.0
        assert 0.0 < baseline["tolerance"] < 1.0
        assert baseline["events_per_sec"] > \
            baseline["preopt_events_per_sec"]

    def test_baseline_gates_the_trampoline_shapes(self):
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[1] / \
            "benchmarks" / "baseline_engine.json"
        baseline = json.loads(path.read_text())
        gated = baseline["gated_metrics"]
        for shape in ("timer_wheel", "process_chain", "allof_fanout"):
            assert shape in gated
            required = gated[shape].get("required_speedup",
                                        baseline["required_speedup"])
            assert required >= 2.0


FIGURE_BASELINE = {
    "figures": {
        "fig10": {
            "scale": "quick",
            "require": {
                "lightvm_count": {"min": 8000},
                "lightvm_max_boot_ms": {"max": 20.0},
                "xenstore_workers": {"equals": 1},
            },
        },
    },
}


class TestFigureGate:
    def good_data(self):
        return {"lightvm_count": 8000, "lightvm_max_boot_ms": 2.5,
                "xenstore_workers": 1}

    def test_pass(self):
        results = {"fig10": {"figure": "fig10", "scale": "quick",
                             "data": self.good_data()}}
        passed, report = figure_gate(results, FIGURE_BASELINE)
        assert passed, report
        assert "lightvm_count = 8000: ok" in report

    def test_min_violation_fails(self):
        data = dict(self.good_data(), lightvm_count=2000)
        results = {"fig10": {"figure": "fig10", "scale": "quick",
                             "data": data}}
        passed, report = figure_gate(results, FIGURE_BASELINE)
        assert not passed
        assert "below the required minimum 8000" in report

    def test_max_violation_fails(self):
        data = dict(self.good_data(), lightvm_max_boot_ms=55.0)
        passed, report = figure_gate(
            {"fig10": {"figure": "fig10", "scale": "quick", "data": data}},
            FIGURE_BASELINE)
        assert not passed
        assert "above the allowed maximum" in report

    def test_equals_violation_fails(self):
        data = dict(self.good_data(), xenstore_workers=4)
        passed, report = figure_gate(
            {"fig10": {"figure": "fig10", "scale": "quick", "data": data}},
            FIGURE_BASELINE)
        assert not passed
        assert "requires exactly 1" in report

    def test_wrong_scale_fails(self):
        passed, report = figure_gate(
            {"fig10": {"figure": "fig10", "scale": "full",
                       "data": self.good_data()}},
            FIGURE_BASELINE)
        assert not passed
        assert "baseline requires 'quick'" in report

    def test_missing_figure_fails(self):
        passed, report = figure_gate({"fig04": {"figure": "fig04"}},
                                     FIGURE_BASELINE)
        assert not passed
        assert "no BENCH_fig10.json" in report

    def test_missing_metric_fails(self):
        data = {"lightvm_count": 8000}
        passed, report = figure_gate(
            {"fig10": {"figure": "fig10", "scale": "quick", "data": data}},
            FIGURE_BASELINE)
        assert not passed
        assert "missing from the result data" in report

    def test_baseline_without_figures_fails(self):
        passed, report = figure_gate({}, {"metric": "timer_wheel"})
        assert not passed


class TestCommittedFigureBaseline:
    def test_fig10_entry_pins_full_scale_on_one_worker(self):
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[1] / \
            "benchmarks" / "baseline_engine.json"
        baseline = json.loads(path.read_text())
        entry = baseline["figures"]["fig10"]
        assert entry["scale"] == "quick"
        require = entry["require"]
        assert require["lightvm_count"]["min"] >= 8000
        assert require["xenstore_workers"]["equals"] == 1
