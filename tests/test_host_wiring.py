"""Tests for Host assembly, specs, and component wiring."""

import pytest

from repro.core import (AMD_OPTERON_64, Host, HostSpec, VARIANTS,
                        XEON_E5_1630, XEON_E5_2690)
from repro.guests import DAYTIME_UNIKERNEL


class TestSpecs:
    def test_paper_machines(self):
        assert XEON_E5_1630.cores == 4
        assert XEON_E5_1630.memory_gb == 128
        assert AMD_OPTERON_64.cores == 64
        assert AMD_OPTERON_64.dom0_cores == 4
        assert XEON_E5_2690.cores == 14
        assert XEON_E5_2690.memory_gb == 64

    def test_guest_cores_derived(self):
        assert XEON_E5_1630.guest_cores == 3
        assert AMD_OPTERON_64.guest_cores == 60

    def test_custom_spec(self):
        spec = HostSpec(name="lab", cores=8, memory_gb=32, dom0_cores=2)
        host = Host(spec=spec, variant="chaos+noxs")
        assert len(host.hypervisor.scheduler.guest_cores) == 6
        assert len(host.hypervisor.scheduler.dom0_cores) == 2


class TestComponentWiring:
    def test_xenstore_variants_have_daemon(self):
        for variant in ("xl", "chaos+xs", "chaos+xs+split"):
            host = Host(variant=variant)
            assert host.xenstore is not None, variant
            assert host.noxs is None, variant

    def test_noxs_variants_have_module_and_sysctl(self):
        for variant in ("chaos+noxs", "lightvm"):
            host = Host(variant=variant)
            assert host.xenstore is None, variant
            assert host.noxs is not None, variant
            assert host.sysctl is not None, variant

    def test_split_variants_have_daemon(self):
        for variant in VARIANTS:
            host = Host(variant=variant)
            expected = variant in ("chaos+xs+split", "lightvm")
            assert (host.daemon is not None) == expected, variant

    def test_xl_uses_bash_hotplug(self):
        from repro.toolstack import BashHotplug, Xendevd
        assert isinstance(Host(variant="xl").toolstack.hotplug,
                          BashHotplug)
        assert isinstance(Host(variant="lightvm").toolstack.hotplug,
                          Xendevd)

    def test_toolstack_names(self):
        assert Host(variant="xl").toolstack.name == "xl"
        assert Host(variant="lightvm").toolstack.name == "chaos+noxs+split"
        assert Host(variant="chaos+xs").toolstack.name == "chaos+xs"

    def test_warmup_fills_pool(self):
        host = Host(variant="lightvm", pool_target=6)
        assert len(host.daemon.pool) == 0
        host.warmup(2000)
        assert len(host.daemon.pool) == 6

    def test_shared_sim_across_hosts(self):
        from repro.sim import Simulator
        sim = Simulator()
        a = Host(variant="chaos+noxs", sim=sim)
        b = Host(variant="chaos+noxs", sim=sim)
        a.create_vm(DAYTIME_UNIKERNEL)
        b.create_vm(DAYTIME_UNIKERNEL)
        assert a.sim is b.sim
        assert a.running_guests == b.running_guests == 1

    def test_guest_memory_accounting(self):
        host = Host(variant="chaos+noxs")
        assert host.guest_memory_kb() == 0
        host.create_vm(DAYTIME_UNIKERNEL)
        assert host.guest_memory_kb() == DAYTIME_UNIKERNEL.memory_kb

    def test_config_for_uses_unique_names(self):
        host = Host(variant="chaos+noxs")
        a = host.config_for(DAYTIME_UNIKERNEL)
        b = host.config_for(DAYTIME_UNIKERNEL)
        assert a.name != b.name

    def test_cpu_utilization_idle_host(self):
        host = Host(variant="chaos+noxs")
        assert host.cpu_utilization() == 0.0
