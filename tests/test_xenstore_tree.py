"""Tests for the XenStore tree."""

import pytest

from repro.xenstore import (InvalidPathError, NoEntError, XenStoreTree,
                            split_path)


class TestPathSplitting:
    def test_root(self):
        assert split_path("/") == []

    def test_simple(self):
        assert split_path("/local/domain/1") == ["local", "domain", "1"]

    def test_trailing_slash_stripped(self):
        assert split_path("/a/b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("local/domain")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/a//b")


class TestTree:
    def test_write_read_roundtrip(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm1")
        assert tree.read("/local/domain/1/name") == "vm1"

    def test_write_creates_parents(self):
        tree = XenStoreTree()
        tree.write("/a/b/c", "v")
        assert tree.exists("/a")
        assert tree.exists("/a/b")
        assert tree.read("/a/b") == ""

    def test_read_missing_raises(self):
        tree = XenStoreTree()
        with pytest.raises(NoEntError):
            tree.read("/nope")

    def test_write_to_root_rejected(self):
        tree = XenStoreTree()
        with pytest.raises(InvalidPathError):
            tree.write("/", "v")

    def test_directory_sorted(self):
        tree = XenStoreTree()
        tree.write("/d/b", "1")
        tree.write("/d/a", "2")
        tree.write("/d/c", "3")
        assert tree.directory("/d") == ["a", "b", "c"]

    def test_directory_of_leaf_empty(self):
        tree = XenStoreTree()
        tree.write("/x", "v")
        assert tree.directory("/x") == []

    def test_mkdir_idempotent(self):
        tree = XenStoreTree()
        tree.write("/d/child", "v")
        tree.mkdir("/d")
        assert tree.read("/d/child") == "v"

    def test_rm_removes_subtree(self):
        tree = XenStoreTree()
        tree.write("/d/a", "1")
        tree.write("/d/b/c", "2")
        removed = tree.rm("/d")
        assert removed == 4  # d, a, b, c
        assert not tree.exists("/d")

    def test_rm_missing_raises(self):
        tree = XenStoreTree()
        with pytest.raises(NoEntError):
            tree.rm("/nope")

    def test_rm_root_rejected(self):
        tree = XenStoreTree()
        with pytest.raises(InvalidPathError):
            tree.rm("/")

    def test_generation_bumps_on_write(self):
        tree = XenStoreTree()
        tree.write("/a", "1")
        g1 = tree.generation_of("/a")
        tree.write("/a", "2")
        assert tree.generation_of("/a") > g1

    def test_generation_untouched_for_other_nodes(self):
        tree = XenStoreTree()
        tree.write("/a", "1")
        tree.write("/b", "2")
        g_a = tree.generation_of("/a")
        tree.write("/b", "3")
        assert tree.generation_of("/a") == g_a

    def test_owner_recorded(self):
        tree = XenStoreTree()
        tree.write("/a", "1", owner_domid=7)
        # walk to check node attribute
        assert tree._walk("/a").owner_domid == 7

    def test_count_nodes(self):
        tree = XenStoreTree()
        tree.write("/a/b", "1")
        tree.write("/a/c", "2")
        assert tree.count_nodes() == 3
