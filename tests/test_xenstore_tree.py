"""Tests for the XenStore tree."""

import pytest

from repro.xenstore import (InvalidPathError, NoEntError, XenStoreTree,
                            split_path)


class TestPathSplitting:
    def test_root(self):
        assert split_path("/") == ()

    def test_simple(self):
        assert split_path("/local/domain/1") == ("local", "domain", "1")

    def test_trailing_slash_stripped(self):
        assert split_path("/a/b/") == ("a", "b")

    def test_memo_returns_equal_parse(self):
        # split_path memoizes successful parses; a second call must give
        # the same (immutable) components.
        first = split_path("/memo/check/path")
        assert split_path("/memo/check/path") == first
        assert isinstance(first, tuple)

    def test_relative_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("local/domain")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/a//b")


class TestTree:
    def test_write_read_roundtrip(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm1")
        assert tree.read("/local/domain/1/name") == "vm1"

    def test_write_creates_parents(self):
        tree = XenStoreTree()
        tree.write("/a/b/c", "v")
        assert tree.exists("/a")
        assert tree.exists("/a/b")
        assert tree.read("/a/b") == ""

    def test_read_missing_raises(self):
        tree = XenStoreTree()
        with pytest.raises(NoEntError):
            tree.read("/nope")

    def test_write_to_root_rejected(self):
        tree = XenStoreTree()
        with pytest.raises(InvalidPathError):
            tree.write("/", "v")

    def test_directory_sorted(self):
        tree = XenStoreTree()
        tree.write("/d/b", "1")
        tree.write("/d/a", "2")
        tree.write("/d/c", "3")
        assert tree.directory("/d") == ["a", "b", "c"]

    def test_directory_of_leaf_empty(self):
        tree = XenStoreTree()
        tree.write("/x", "v")
        assert tree.directory("/x") == []

    def test_mkdir_idempotent(self):
        tree = XenStoreTree()
        tree.write("/d/child", "v")
        tree.mkdir("/d")
        assert tree.read("/d/child") == "v"

    def test_rm_removes_subtree(self):
        tree = XenStoreTree()
        tree.write("/d/a", "1")
        tree.write("/d/b/c", "2")
        removed = tree.rm("/d")
        assert removed == 4  # d, a, b, c
        assert not tree.exists("/d")

    def test_rm_missing_raises(self):
        tree = XenStoreTree()
        with pytest.raises(NoEntError):
            tree.rm("/nope")

    def test_rm_root_rejected(self):
        tree = XenStoreTree()
        with pytest.raises(InvalidPathError):
            tree.rm("/")

    def test_generation_bumps_on_write(self):
        tree = XenStoreTree()
        tree.write("/a", "1")
        g1 = tree.generation_of("/a")
        tree.write("/a", "2")
        assert tree.generation_of("/a") > g1

    def test_generation_untouched_for_other_nodes(self):
        tree = XenStoreTree()
        tree.write("/a", "1")
        tree.write("/b", "2")
        g_a = tree.generation_of("/a")
        tree.write("/b", "3")
        assert tree.generation_of("/a") == g_a

    def test_owner_recorded(self):
        tree = XenStoreTree()
        tree.write("/a", "1", owner_domid=7)
        # walk to check node attribute
        assert tree._walk("/a").owner_domid == 7

    def test_count_nodes(self):
        tree = XenStoreTree()
        tree.write("/a/b", "1")
        tree.write("/a/c", "2")
        assert tree.count_nodes() == 3


class TestNameIndex:
    """Coherence of the O(1) name-admission index against the tree."""

    def test_write_registers_name(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm-a")
        assert tree.name_in_use("vm-a")
        assert not tree.name_in_use("vm-b")

    def test_overwrite_moves_name(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "old")
        tree.write("/local/domain/1/name", "new")
        assert not tree.name_in_use("old")
        assert tree.name_in_use("new")

    def test_same_name_on_two_domains_counted(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "dup")
        tree.write("/local/domain/2/name", "dup")
        tree.rm("/local/domain/1")
        assert tree.name_in_use("dup")
        tree.rm("/local/domain/2")
        assert not tree.name_in_use("dup")

    def test_implicit_name_node_indexed_as_empty(self):
        # A deeper write creates /local/domain/3/name with value "".
        tree = XenStoreTree()
        tree.write("/local/domain/3/name/sub", "x")
        assert tree.name_in_use("")
        tree.write("/local/domain/3/name", "real")
        assert tree.name_in_use("real")
        assert not tree.name_in_use("")

    def test_rm_name_node_unregisters(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm-a")
        tree.rm("/local/domain/1/name")
        assert not tree.name_in_use("vm-a")

    def test_rm_domain_subtree_unregisters(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm-a")
        tree.write("/local/domain/1/memory", "65536")
        tree.rm("/local/domain/1")
        assert not tree.name_in_use("vm-a")

    def test_rm_whole_domain_dir_unregisters_all(self):
        tree = XenStoreTree()
        tree.write("/local/domain/1/name", "vm-a")
        tree.write("/local/domain/2/name", "vm-b")
        tree.rm("/local/domain")
        assert not tree.name_in_use("vm-a")
        assert not tree.name_in_use("vm-b")

    def test_unrelated_paths_never_indexed(self):
        tree = XenStoreTree()
        tree.write("/tool/xenstored/name", "ghost")
        tree.write("/local/domain/1/device/name", "ghost")
        assert not tree.name_in_use("ghost")

    def test_transactional_write_lands_in_index(self):
        from repro.xenstore import Transaction
        tree = XenStoreTree()
        tx = Transaction(tree, 1, 0)
        tx.write("/local/domain/4/name", "tx-vm")
        assert not tree.name_in_use("tx-vm")  # staged, not committed
        tx.commit()
        assert tree.name_in_use("tx-vm")

    def test_child_count(self):
        tree = XenStoreTree()
        assert tree.child_count("/local/domain") == 0
        tree.write("/local/domain/1/name", "a")
        tree.write("/local/domain/2/name", "b")
        assert tree.child_count("/local/domain") == 2
