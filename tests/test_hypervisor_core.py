"""Tests for the hypervisor domain lifecycle and scheduler."""

import pytest

from repro.hypervisor import (DEV_VIF, STATE_INITIALISING, DeviceEntry,
                              Domain, DomainState, DomainStateError,
                              HostScheduler, Hypervisor, HypervisorError,
                              OutOfMemoryError, ShutdownReason)
from repro.sim import Simulator


def make_hv(memory_mb=1024, cores=4, dom0_cores=1):
    sim = Simulator()
    hv = Hypervisor(sim, memory_kb=memory_mb * 1024, total_cores=cores,
                    dom0_cores=dom0_cores, dom0_memory_kb=64 * 1024)
    return sim, hv


class TestDomainLifecycle:
    def test_dom0_exists_at_boot(self):
        _sim, hv = make_hv()
        dom0 = hv.domain(0)
        assert dom0.name == "Domain-0"
        assert dom0.state == DomainState.RUNNING
        assert hv.domain_count() == 0

    def test_create_allocates_memory_and_cores(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create(name="guest", memory_kb=8192)
        assert dom.state == DomainState.CREATED
        assert hv.memory.owned_kb(dom.domid) == 8192
        assert len(dom.vcpu_cores) == 1
        assert hv.domain_count() == 1

    def test_domids_monotonic(self):
        _sim, hv = make_hv()
        ids = [hv.domctl_create().domid for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_create_oom_propagates(self):
        _sim, hv = make_hv(memory_mb=128)
        with pytest.raises(OutOfMemoryError):
            hv.domctl_create(memory_kb=512 * 1024)

    def test_unpause_runs_guest(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        assert dom.state == DomainState.RUNNING

    def test_pause_requires_running(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        with pytest.raises(DomainStateError):
            hv.domctl_pause(dom)

    def test_shutdown_suspend_reason(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        hv.domctl_shutdown(dom, ShutdownReason.SUSPEND)
        assert dom.state == DomainState.SUSPENDED
        hv.domctl_shutdown
        assert dom.shutdown_reason is ShutdownReason.SUSPEND

    def test_destroy_releases_everything(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create(memory_kb=4096)
        hv.event_channels.alloc_unbound(dom.domid, 0)
        hv.grants.grant_access(dom.domid, 0, frame=1)
        free_before_create = hv.memory.free_kb + 4096
        hv.domctl_destroy(dom)
        assert hv.memory.free_kb == free_before_create
        assert hv.event_channels.count_for(dom.domid) == 0
        assert hv.grants.count_for(dom.domid) == 0
        assert dom.state == DomainState.DEAD
        with pytest.raises(HypervisorError):
            hv.domain(dom.domid)

    def test_destroy_dom0_forbidden(self):
        _sim, hv = make_hv()
        with pytest.raises(HypervisorError):
            hv.domctl_destroy(hv.domain(0))

    def test_hypercalls_counted(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        assert hv.hypercall_counts["domctl_create"] == 1
        assert hv.hypercall_counts["domctl_unpause"] == 1


class TestShells:
    def test_shell_creation_and_claim(self):
        _sim, hv = make_hv()
        shell = hv.domctl_create(shell=True)
        assert shell.state == DomainState.SHELL
        hv.domctl_claim_shell(shell, name="vm1")
        assert shell.state == DomainState.CREATED
        assert shell.name == "vm1"

    def test_shell_resize(self):
        _sim, hv = make_hv()
        shell = hv.domctl_create(shell=True, memory_kb=4096)
        hv.domctl_resize_shell(shell, 16384)
        assert hv.memory.owned_kb(shell.domid) == 16384
        assert shell.memory_kb == 16384

    def test_resize_nonshell_rejected(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        with pytest.raises(DomainStateError):
            hv.domctl_resize_shell(dom, 8192)


class TestDevicePages:
    def test_devpage_create_and_write(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        entry = DeviceEntry(DEV_VIF, STATE_INITIALISING, 0, 3, 4, b"\0" * 6)
        index = hv.devpage_write(0, dom, entry)
        assert dom.device_page.read(index).evtchn_port == 3

    def test_devpage_double_create_rejected(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        with pytest.raises(HypervisorError):
            hv.devpage_create(dom)

    def test_devpage_write_requires_dom0(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        entry = DeviceEntry(DEV_VIF, STATE_INITIALISING, 0, 3, 4, b"\0" * 6)
        with pytest.raises(HypervisorError):
            hv.devpage_write(dom.domid, dom, entry)

    def test_guest_maps_own_page(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        entry = DeviceEntry(DEV_VIF, STATE_INITIALISING, 0, 3, 4, b"\0" * 6)
        hv.devpage_write(0, dom, entry)
        view = hv.devpage_map(dom.domid)
        from repro.hypervisor import DevicePage
        assert len(DevicePage.parse(view)) == 1

    def test_map_without_page_rejected(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        with pytest.raises(HypervisorError):
            hv.devpage_map(dom.domid)


class TestScheduler:
    def test_round_robin_guest_placement(self):
        sim, hv = make_hv(cores=4, dom0_cores=1)
        doms = [hv.domctl_create() for _ in range(6)]
        cores = [d.vcpu_cores[0] for d in doms]
        assert cores[0:3] == hv.scheduler.guest_cores
        assert cores[3:6] == hv.scheduler.guest_cores

    def test_dom0_cores_separate_from_guests(self):
        _sim, hv = make_hv(cores=4, dom0_cores=2)
        assert len(hv.scheduler.dom0_cores) == 2
        assert len(hv.scheduler.guest_cores) == 2
        dom = hv.domctl_create()
        assert dom.vcpu_cores[0] in hv.scheduler.guest_cores

    def test_idle_load_add_and_clear(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        hv.scheduler.set_idle_load(dom, 0.3)
        core = dom.vcpu_cores[0]
        assert core.background_weight == pytest.approx(0.3)
        hv.scheduler.set_idle_load(dom, 0.1)
        assert core.background_weight == pytest.approx(0.1)
        hv.scheduler.clear_idle_load(dom)
        assert core.background_weight == pytest.approx(0.0)

    def test_pause_clears_idle_load(self):
        _sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        hv.scheduler.set_idle_load(dom, 0.5)
        hv.domctl_pause(dom)
        assert dom.vcpu_cores[0].background_weight == pytest.approx(0.0)

    def test_run_on_domain_executes_work(self):
        sim, hv = make_hv()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        done = hv.scheduler.run_on_domain(dom, 5.0)
        sim.run(until=done)
        assert sim.now == pytest.approx(5.0)

    def test_scheduler_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            HostScheduler(sim, total_cores=1, dom0_cores=1)
        with pytest.raises(ValueError):
            HostScheduler(sim, total_cores=4, dom0_cores=4)

    def test_utilization_split(self):
        _sim, hv = make_hv(cores=4, dom0_cores=1)
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        hv.scheduler.set_idle_load(dom, 1.0)
        assert hv.scheduler.guest_utilization() == pytest.approx(1.0 / 3)
        assert hv.scheduler.utilization() == pytest.approx(1.0 / 4)
