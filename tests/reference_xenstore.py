"""FROZEN pre-redesign XenStore daemon (the PR-5 seed semantics).

This is a verbatim copy of ``src/repro/xenstore/daemon.py`` as it stood
before the client-API/worker-pool redesign, kept as the measuring stick
for the digest-identity tests (``tests/test_xenstore_digest_identity.py``)
the same way ``tests/reference_kernel.py`` freezes the naive DES kernel.
Do not "fix" or modernise it: its value is that it does not change.

Ties the tree, watches, transactions and access log together behind the
message protocol.  All public operations are **generators** meant to be
driven inside a simulation process (``yield from xs.op_write(...)``): they
serialize on the daemon's single worker thread, charge protocol latency,
fire watches and write log lines — reproducing every §4.2 overhead:

* per-op message/ack round trips (software interrupts + domain crossings);
* watch scans over a registry that grows with the number of VMs;
* the O(N) unique-name admission check;
* transaction conflicts that force clients to retry;
* log rotation spikes;
* queueing inflation as ambient guest traffic loads the daemon.
"""

from __future__ import annotations

import functools
import math
import typing

from repro.faults.plan import NULL_INJECTOR, MessageTimeout
from repro.faults.retry import RetryPolicy
from repro.sim.resources import Resource
from repro.trace.tracer import tracer_of
from repro.xenstore.accesslog import AccessLog
from repro.xenstore.protocol import XenStoreCosts
from repro.xenstore.store import NoEntError, XenStoreTree
from repro.xenstore.transaction import Transaction, TransactionConflict
from repro.xenstore.watches import Watch, WatchManager

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


def _traced(name: str):
    """Wrap a generator op so it runs inside a ``xenstore.<op>`` span
    (a no-op when no tracer is attached to the simulator)."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if self.sim.tracer is None:
                # Fast path: skip the context manager and the null-span
                # allocation entirely — XenStore ops are the hottest
                # generator stack in a creation storm.
                return (yield from fn(self, *args, **kwargs))
            with tracer_of(self.sim).span(name):
                result = yield from fn(self, *args, **kwargs)
            return result
        return wrapper
    return decorate


class DuplicateNameError(RuntimeError):
    """A guest with this name already exists."""


class QuotaExceededError(RuntimeError):
    """A guest hit its per-domain node quota (E2BIG)."""


class XenStoreDaemon:
    """oxenstored/cxenstored behind the Xen bus protocol."""

    def __init__(self, sim: "Simulator",
                 costs: typing.Optional[XenStoreCosts] = None,
                 implementation: str = "oxenstored",
                 log_enabled: bool = True,
                 rng: typing.Optional[typing.Any] = None,
                 enforce_permissions: bool = False,
                 faults=None,
                 retry_policy: typing.Optional[RetryPolicy] = None):
        if implementation not in ("oxenstored", "cxenstored"):
            raise ValueError("unknown implementation %r" % implementation)
        self.sim = sim
        self.costs = costs or XenStoreCosts()
        #: RNG stream for ambient-conflict draws (None disables them).
        self.rng = rng
        #: Fault injector consulted at ``xenstore.*`` fault points.
        self.faults = faults if faults is not None else NULL_INJECTOR
        #: Resend schedule for lost message acks (``xenstore.message``).
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=8, base_ms=0.5, multiplier=2.0, cap_ms=8.0,
            jitter=0.25)
        #: When True, reads/writes are checked against node ACLs
        #: (xenstored always enforces; benchmarks leave it off since the
        #: per-op permission arithmetic is already inside process_us).
        self.enforce_permissions = enforce_permissions
        self.implementation = implementation
        self.tree = XenStoreTree()
        self.watches = WatchManager()
        self.log = AccessLog(enabled=log_enabled)
        #: The daemon is single-threaded; requests serialize here.
        self.worker = Resource(sim, capacity=1)
        self._next_tx_id = 1
        #: Weighted count of connected running guests generating ambient
        #: traffic (see :meth:`register_client`).
        self.ambient_clients = 0.0
        self.stats = {
            "ops": 0,
            "commits": 0,
            "conflicts": 0,
            "watch_events": 0,
            "rotation_stalls": 0,
            "timeouts": 0,
            "watch_drops": 0,
        }
        #: Nodes created per guest domain (quota accounting).
        self._node_counts: typing.Dict[int, int] = {}

    def _charge_quota(self, domid: int, path: str) -> None:
        """Count a node creation against the writer's quota."""
        if domid == 0 or not self.costs.quota_nodes_per_domain:
            return
        if self.tree.exists(path):
            return  # overwrite, not creation
        count = self._node_counts.get(domid, 0)
        if count >= self.costs.quota_nodes_per_domain:
            raise QuotaExceededError(
                "domain %d exceeded its %d-node XenStore quota"
                % (domid, self.costs.quota_nodes_per_domain))
        self._node_counts[domid] = count + 1

    def _release_quota(self, owner: int, removed: int) -> None:
        """Return removed nodes to their owner's quota (xenstored
        decrements on delete)."""
        if removed and owner and owner in self._node_counts:
            self._node_counts[owner] = max(
                0, self._node_counts[owner] - removed)

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _impl_factor(self) -> float:
        if self.implementation == "cxenstored":
            return self.costs.cxenstored_multiplier
        return 1.0

    def _load_factor(self) -> float:
        """Queueing inflation from ambient guest traffic: 1 / (1 - rho)."""
        rho = min(self.costs.ambient_util_cap,
                  self.ambient_clients * self.costs.ambient_util_per_client)
        return 1.0 / (1.0 - rho)

    def _op_latency_ms(self, extra_us: float = 0.0) -> float:
        base = self.costs.op_base_ms() + extra_us / 1000.0
        return base * self._impl_factor() * self._load_factor()

    def register_client(self, weight: float = 1.0) -> None:
        """A guest connected its xenbus (it is now running).

        ``weight`` scales how much ambient traffic this client generates:
        a Debian guest with consoles and daemons is several times chattier
        than a single-purpose unikernel.
        """
        self.ambient_clients += weight

    def unregister_client(self, weight: float = 1.0) -> None:
        """A guest disconnected (destroyed/suspended)."""
        self.ambient_clients = max(0.0, self.ambient_clients - weight)

    # ------------------------------------------------------------------
    # Internal mutation plumbing
    # ------------------------------------------------------------------
    def _charge(self, extra_us: float = 0.0):
        """Generator: hold the worker and charge one op's latency.

        Under fault injection the ``xenstore.message`` point models a lost
        ack: the client waits out its message timeout (without holding the
        worker), backs off, and resends — each resend pays the full op
        latency again.  Past the retry budget, :class:`MessageTimeout`.
        """
        attempt = 0
        while True:
            with self.worker.request() as req:
                yield req
                yield self.sim.timeout(self._op_latency_ms(extra_us))
            self.stats["ops"] += 1
            rule = self.faults.fires("xenstore.message")
            if rule is None:
                return
            self.stats["timeouts"] += 1
            yield self.sim.timeout(rule.delay_ms
                                   or self.costs.message_timeout_ms)
            attempt += 1
            if attempt >= self.retry_policy.max_retries:
                raise MessageTimeout(
                    "XenStore message unacknowledged after %d resends"
                    % attempt)
            yield self.sim.timeout(
                self.retry_policy.backoff_ms(attempt, self.rng))

    def _log_access(self):
        """Generator: write log lines, stalling on rotation."""
        rotated = self.log.record(self.costs.log_lines_per_op)
        if rotated:
            self.stats["rotation_stalls"] += 1
            yield self.sim.timeout(self.costs.log_rotation_ms)

    def _fire_watches(self, path: str):
        """Generator: scan the registry and deliver matching events."""
        scan_us = len(self.watches) * self.costs.watch_scan_us
        rule = self.faults.fires("xenstore.watch")
        if rule is not None:
            # The delivery is dropped: the daemon still pays the scan but
            # no waiter is woken — they must time out and re-announce.
            self.stats["watch_drops"] += 1
            delay = (scan_us / 1000.0 * self._impl_factor()
                     * self._load_factor() + rule.delay_ms)
            if delay:
                yield self.sim.timeout(delay)
            return
        fired = self.watches.fire(path)
        deliver_us = len(fired) * self.costs.watch_deliver_us
        self.stats["watch_events"] += len(fired)
        if fired:
            tracer_of(self.sim).instant("xenstore.watch_fire",
                                        delivered=len(fired))
        delay = (scan_us + deliver_us) / 1000.0 * self._impl_factor()
        if delay:
            yield self.sim.timeout(delay * self._load_factor())

    # ------------------------------------------------------------------
    # Simple (non-transactional) operations
    # ------------------------------------------------------------------
    def _check_access(self, domid: int, path: str, write: bool) -> None:
        if not self.enforce_permissions or domid == 0:
            return
        if not self.tree.exists(path):
            return  # creation is governed by the parent in real Xen;
            # we allow it and let the new node inherit the writer
        from repro.xenstore.permissions import PermissionError_
        perms = self.tree.get_perms(path)
        allowed = (perms.allows_write(domid) if write
                   else perms.allows_read(domid))
        if not allowed:
            raise PermissionError_(
                "domain %d may not %s %s" % (
                    domid, "write" if write else "read", path))

    @_traced("xenstore.read")
    def op_read(self, domid: int, path: str):
        """Generator: XS_READ."""
        yield from self._charge()
        self._check_access(domid, path, write=False)
        yield from self._log_access()
        return self.tree.read(path)

    @_traced("xenstore.write")
    def op_write(self, domid: int, path: str, value: str):
        """Generator: XS_WRITE (fires watches)."""
        yield from self._charge()
        self._check_access(domid, path, write=True)
        self._charge_quota(domid, path)
        self.tree.write(path, value, owner_domid=domid)
        yield from self._fire_watches(path)
        yield from self._log_access()

    @_traced("xenstore.get_perms")
    def op_get_perms(self, domid: int, path: str):
        """Generator: XS_GET_PERMS."""
        yield from self._charge()
        yield from self._log_access()
        return self.tree.get_perms(path)

    @_traced("xenstore.set_perms")
    def op_set_perms(self, domid: int, path: str, perms):
        """Generator: XS_SET_PERMS (owner or Dom0 only)."""
        yield from self._charge()
        current = self.tree.get_perms(path)
        if domid != 0 and domid != current.owner_domid:
            from repro.xenstore.permissions import PermissionError_
            raise PermissionError_(
                "domain %d does not own %s" % (domid, path))
        self.tree.set_perms(path, perms)
        yield from self._log_access()

    @_traced("xenstore.mkdir")
    def op_mkdir(self, domid: int, path: str):
        """Generator: XS_MKDIR."""
        yield from self._charge()
        self.tree.mkdir(path, owner_domid=domid)
        yield from self._fire_watches(path)
        yield from self._log_access()

    @_traced("xenstore.rm")
    def op_rm(self, domid: int, path: str):
        """Generator: XS_RM (recursive; fires watches)."""
        yield from self._charge()
        try:
            owner = self.tree._walk(path).owner_domid
            removed = self.tree.rm(path)
            self._release_quota(owner, removed)
        except NoEntError:
            removed = 0
        if removed:
            yield from self._fire_watches(path)
        yield from self._log_access()
        return removed

    @_traced("xenstore.directory")
    def op_directory(self, domid: int, path: str):
        """Generator: XS_DIRECTORY."""
        yield from self._charge()
        yield from self._log_access()
        return self.tree.directory(path)

    @_traced("xenstore.watch")
    def op_watch(self, domid: int, path: str, token: str, callback):
        """Generator: XS_WATCH registration."""
        yield from self._charge()
        watch = self.watches.add(domid, path, token, callback)
        yield from self._log_access()
        return watch

    @_traced("xenstore.unwatch")
    def op_unwatch(self, domid: int, watch: Watch):
        """Generator: XS_UNWATCH."""
        yield from self._charge()
        self.watches.remove(watch)
        yield from self._log_access()

    # ------------------------------------------------------------------
    # The O(N) unique-name admission check
    # ------------------------------------------------------------------
    @_traced("xenstore.check_unique_name")
    def op_check_unique_name(self, domid: int, name: str):
        """Generator: compare ``name`` against every running guest's name.

        §4.2: "writing certain types of information, such as unique guest
        names, incurs overhead linear with the number of machines."
        """
        # The *modeled* cost is the §4.2 linear scan: one probe per
        # registered domain.  The *host* cost is O(1) via the tree's
        # name-admission index — equivalent to the scan as long as no
        # concurrent name mutation lands while this op waits its turn on
        # the worker (creations serialize on it; the dual-kernel digest
        # tests pin the equivalence on the figure workloads).
        scan_us = ((self.tree.child_count("/local/domain") + 1)
                   * self.costs.per_node_scan_us)
        yield from self._charge(extra_us=scan_us)
        if self.tree.name_in_use(name):
            raise DuplicateNameError(name)
        yield from self._log_access()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @_traced("xenstore.txn_start")
    def transaction_start(self, domid: int):
        """Generator: XS_TRANSACTION_START; returns a Transaction."""
        yield from self._charge(extra_us=self.costs.txn_overhead_us)
        tx = Transaction(self.tree, self._next_tx_id, domid)
        tx.opened_at = self.sim.now
        self._next_tx_id += 1
        return tx

    @_traced("xenstore.tx_read")
    def tx_read(self, tx: Transaction, path: str):
        """Generator: XS_READ inside a transaction."""
        yield from self._charge()
        yield from self._log_access()
        return tx.read(path)

    @_traced("xenstore.tx_exists")
    def tx_exists(self, tx: Transaction, path: str):
        """Generator: existence check inside a transaction."""
        yield from self._charge()
        yield from self._log_access()
        return tx.exists(path)

    @_traced("xenstore.tx_write")
    def tx_write(self, tx: Transaction, path: str, value: str):
        """Generator: XS_WRITE inside a transaction (staged)."""
        yield from self._charge()
        tx.write(path, value)
        yield from self._log_access()

    @_traced("xenstore.tx_rm")
    def tx_rm(self, tx: Transaction, path: str):
        """Generator: XS_RM inside a transaction (staged)."""
        yield from self._charge()
        tx.rm(path)
        yield from self._log_access()

    @_traced("xenstore.txn_commit")
    def transaction_commit(self, tx: Transaction):
        """Generator: XS_TRANSACTION_END(commit=True).

        Raises :class:`TransactionConflict` on a clash; the caller retries.
        Watches fire for every path the commit modified.
        """
        validate_us = ((len(tx.read_set) + len(tx.write_set))
                       * self.costs.per_node_scan_us)
        yield from self._charge(
            extra_us=self.costs.txn_overhead_us + validate_us)
        if self.faults.fires("xenstore.commit") is not None:
            tx.abort()
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise TransactionConflict(
                "transaction %d invalidated (injected conflict)" % tx.tx_id)
        if self._ambient_clash(tx):
            tx.abort()
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise TransactionConflict(
                "transaction %d invalidated by concurrent guest traffic"
                % tx.tx_id)
        try:
            modified = tx.commit()
        except TransactionConflict:
            self.stats["conflicts"] += 1
            yield from self._log_access()
            raise
        self.stats["commits"] += 1
        for path in modified:
            yield from self._fire_watches(path)
        yield from self._log_access()

    def _ambient_clash(self, tx: Transaction) -> bool:
        """Draw whether ambient guest traffic invalidated ``tx``.

        Modeled as a Poisson process over the transaction's open duration
        with intensity proportional to the connected-client count; the
        paper's observed behaviour is that overlap (and thus retries)
        grows with the number of running VMs.
        """
        if self.rng is None or not self.ambient_clients:
            return False
        duration = max(0.0, self.sim.now - getattr(tx, "opened_at",
                                                   self.sim.now))
        rate = (self.costs.ambient_conflict_rate_per_client
                * self.ambient_clients)
        probability = min(self.costs.conflict_probability_cap,
                          1.0 - math.exp(-rate * duration))
        return self.rng.random() < probability

    @_traced("xenstore.txn_abort")
    def transaction_abort(self, tx: Transaction):
        """Generator: XS_TRANSACTION_END(commit=False)."""
        yield from self._charge()
        tx.abort()
        yield from self._log_access()
