"""Tests for checkpointing (save/restore) and migration."""

import pytest

from repro.core import Host, HostSpec, XEON_E5_1630_2DOM0
from repro.faults import FaultInjector, FaultPlan, MigrationAborted
from repro.guests import DAYTIME_UNIKERNEL
from repro.hypervisor import DomainState
from repro.net import Link
from repro.sim import Simulator
from repro.toolstack import migrate


def make_host(variant, sim=None):
    host = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim)
    host.warmup(500)
    return host


class TestCheckpoint:
    @pytest.mark.parametrize("variant", ["xl", "chaos+xs", "lightvm"])
    def test_save_destroys_and_restore_revives(self, variant):
        host = make_host(variant)
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        guests_before = host.running_guests
        saved = host.save_vm(record.domain, config)
        assert host.running_guests == guests_before - 1
        assert saved.memory_kb == DAYTIME_UNIKERNEL.memory_kb
        domain = host.restore_vm(saved)
        assert domain.state == DomainState.RUNNING
        assert host.running_guests == guests_before

    def test_lightvm_save_near_30ms(self):
        host = make_host("lightvm")
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        start = host.sim.now
        host.save_vm(record.domain, config)
        assert host.sim.now - start == pytest.approx(30.0, abs=10.0)

    def test_lightvm_restore_near_20ms(self):
        host = make_host("lightvm")
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        saved = host.save_vm(record.domain, config)
        start = host.sim.now
        host.restore_vm(saved)
        assert host.sim.now - start == pytest.approx(20.0, abs=10.0)

    def test_xl_save_slower_than_lightvm(self):
        times = {}
        for variant in ("xl", "lightvm"):
            host = make_host(variant)
            config = host.config_for(DAYTIME_UNIKERNEL)
            record = host.create_vm(config)
            start = host.sim.now
            host.save_vm(record.domain, config)
            times[variant] = host.sim.now - start
        assert times["xl"] > times["lightvm"] * 2.5

    def test_xl_restore_slowest_direction(self):
        host = make_host("xl")
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        save_start = host.sim.now
        saved = host.save_vm(record.domain, config)
        save_ms = host.sim.now - save_start
        restore_start = host.sim.now
        host.restore_vm(saved)
        restore_ms = host.sim.now - restore_start
        assert restore_ms > save_ms

    def test_restored_domain_has_devices(self):
        host = make_host("lightvm")
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        saved = host.save_vm(record.domain, config)
        domain = host.restore_vm(saved)
        assert domain.device_page is not None
        assert domain.device_page.count >= 1


class TestMigration:
    def _migrate(self, variant, latency_ms=0.1, bandwidth_mbps=1000.0):
        sim = Simulator()
        src = make_host(variant, sim=sim)
        dst = make_host(variant, sim=sim)
        config = src.config_for(DAYTIME_UNIKERNEL)
        record = src.create_vm(config)
        link = Link(sim, latency_ms=latency_ms,
                    bandwidth_mbps=bandwidth_mbps)
        start = sim.now
        proc = sim.process(migrate(src.checkpointer, dst.checkpointer,
                                   record.domain, config, link))
        remote = sim.run(until=proc)
        return sim.now - start, remote, src, dst

    def test_lightvm_migration_near_60ms(self):
        elapsed, remote, _src, _dst = self._migrate("lightvm")
        assert elapsed == pytest.approx(60.0, abs=25.0)
        assert remote.state == DomainState.RUNNING

    def test_source_domain_gone_after_migration(self):
        _elapsed, _remote, src, dst = self._migrate("lightvm")
        assert src.running_guests + dst.running_guests >= 1
        assert src.running_guests == 0

    def test_slow_link_slows_migration(self):
        fast, _r, _s, _d = self._migrate("lightvm", latency_ms=0.1)
        slow, _r, _s, _d = self._migrate("lightvm", latency_ms=10.0,
                                         bandwidth_mbps=100.0)
        assert slow > fast + 20.0

    def test_xl_migration_slower_than_lightvm(self):
        xl, _r, _s, _d = self._migrate("xl")
        lightvm, _r, _s, _d = self._migrate("lightvm")
        assert xl > lightvm


#: A host whose RAM is fully consumed by Dom0 — any guest creation OOMs.
FULL_SPEC = HostSpec(name="full", cores=4, memory_gb=1, dom0_cores=1,
                     dom0_memory_gb=1)


class TestMigrationFailures:
    def _pair(self, variant, dest_spec=XEON_E5_1630_2DOM0):
        sim = Simulator()
        src = Host(spec=XEON_E5_1630_2DOM0, variant=variant, sim=sim)
        dst = Host(spec=dest_spec, variant=variant, sim=sim)
        src.warmup(500)
        config = src.config_for(DAYTIME_UNIKERNEL)
        record = src.create_vm(config)
        link = Link(sim, latency_ms=0.1, bandwidth_mbps=1000.0)
        return sim, src, dst, record.domain, config, link

    def _run_migrate(self, sim, src, dst, domain, config, link,
                     faults=None):
        proc = sim.process(migrate(src.checkpointer, dst.checkpointer,
                                   domain, config, link, faults=faults))
        return sim.run(until=proc)

    @pytest.mark.parametrize("variant", ["xl", "chaos+xs"])
    def test_destination_oom_leaves_source_running(self, variant):
        sim, src, dst, domain, config, link = self._pair(
            variant, dest_spec=FULL_SPEC)
        with pytest.raises(MigrationAborted):
            self._run_migrate(sim, src, dst, domain, config, link)
        # Pre-creation failed before the source was suspended: the guest
        # never stopped running and the destination kept nothing.
        assert domain.state == DomainState.RUNNING
        assert src.running_guests == 1
        assert dst.running_guests == 0
        sim.run(until=sim.now + 500.0)
        assert dst.check_invariants() == []
        assert src.check_invariants() == []

    @pytest.mark.parametrize("variant", ["xl", "lightvm"])
    def test_link_drop_resumes_source_and_rolls_back_dest(self, variant):
        sim, src, dst, domain, config, link = self._pair(variant)
        faults = FaultInjector(FaultPlan.once("migration.link",
                                              kind="drop"))
        with pytest.raises(MigrationAborted):
            self._run_migrate(sim, src, dst, domain, config, link,
                              faults=faults)
        assert domain.state == DomainState.RUNNING
        assert src.running_guests == 1
        assert dst.running_guests == 0
        sim.run(until=sim.now + 500.0)
        assert dst.check_invariants() == []
        assert src.check_invariants() == []

    def test_migration_succeeds_after_an_aborted_attempt(self):
        sim, src, dst, domain, config, link = self._pair("lightvm")
        faults = FaultInjector(FaultPlan.once("migration.link"))
        with pytest.raises(MigrationAborted):
            self._run_migrate(sim, src, dst, domain, config, link,
                              faults=faults)
        sim.run(until=sim.now + 500.0)
        remote = self._run_migrate(sim, src, dst, domain, config, link)
        assert remote.state == DomainState.RUNNING
        assert src.running_guests == 0
        assert dst.running_guests == 1
        sim.run(until=sim.now + 500.0)
        assert src.check_invariants() == []
        assert dst.check_invariants() == []
