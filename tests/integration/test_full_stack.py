"""Integration tests: whole-platform scenarios across subsystems."""

import pytest

from repro.core import Host, VARIANTS, XEON_E5_1630_2DOM0
from repro.guests import (DAYTIME_UNIKERNEL, MINIPYTHON_UNIKERNEL, TINYX,
                          boot_guest)
from repro.hypervisor import DomainState
from repro.net import Link
from repro.sim import Simulator
from repro.toolstack import migrate


class TestLifecycleRoundTrips:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_create_destroy_cycle_leaks_nothing(self, variant):
        host = Host(variant=variant)
        host.warmup(500)
        hv = host.hypervisor

        def shell_kb():
            return sum(d.memory_kb for d in hv.domains.values()
                       if d.state is DomainState.SHELL)

        free_before = hv.memory.free_kb + shell_kb()
        channels_before = hv.event_channels.count_for(0)
        grants_before = hv.grants.count_for(0)
        domains = [host.create_vm(DAYTIME_UNIKERNEL).domain
                   for _ in range(5)]
        for domain in domains:
            host.destroy_vm(domain)
        # Shell-pool reservations fluctuate as the daemon replenishes;
        # net of shells, guest memory must be fully returned.
        assert hv.memory.free_kb + shell_kb() == free_before
        assert host.running_guests == 0
        if variant == "xl":
            assert hv.event_channels.count_for(0) == channels_before
            assert hv.grants.count_for(0) == grants_before

    def test_interleaved_create_and_destroy(self):
        host = Host(variant="lightvm", pool_target=32)
        host.warmup(1000)
        live = []
        for round_number in range(10):
            live.append(host.create_vm(DAYTIME_UNIKERNEL).domain)
            live.append(host.create_vm(MINIPYTHON_UNIKERNEL).domain)
            if round_number % 2:
                host.destroy_vm(live.pop(0))
        assert host.running_guests == len(live)
        for domain in live:
            host.destroy_vm(domain)
        assert host.running_guests == 0

    def test_repeated_checkpoint_cycles_converge(self):
        host = Host(spec=XEON_E5_1630_2DOM0, variant="lightvm")
        host.warmup(500)
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        domain = record.domain
        times = []
        for _ in range(5):
            start = host.sim.now
            saved = host.save_vm(domain, config)
            domain = host.restore_vm(saved)
            times.append(host.sim.now - start)
        # Cycle time is stable (no resource leak slowing things down).
        assert max(times) < min(times) * 1.2
        assert domain.state == DomainState.RUNNING


class TestMixedFleet:
    def test_mixed_guest_types_coexist(self):
        host = Host(variant="xl")
        records = [host.create_vm(image) for image in
                   (DAYTIME_UNIKERNEL, TINYX, MINIPYTHON_UNIKERNEL)]
        assert all(r.domain.state == DomainState.RUNNING
                   for r in records)
        # Tinyx exerts idle load; the unikernels do not.
        assert records[1].domain.background_weight > 0
        assert records[0].domain.background_weight == 0

    def test_xenstore_tree_reflects_fleet(self):
        host = Host(variant="xl")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        tree = host.xenstore.tree
        base = "/local/domain/%d" % record.domain.domid
        assert tree.read(base + "/name") == record.config_name
        assert tree.exists(base + "/device/vif/0")
        host.destroy_vm(record.domain)
        assert not tree.exists(base)

    def test_device_page_reflects_fleet(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        page = record.domain.device_page
        assert page is not None
        types = {entry.dev_type for _i, entry in page.entries()}
        assert len(types) == 2  # vif + sysctl


class TestCrossHostMigrationChain:
    def test_vm_survives_two_hops(self):
        sim = Simulator()
        hosts = [Host(spec=XEON_E5_1630_2DOM0, variant="lightvm", sim=sim)
                 for _ in range(3)]
        for host in hosts:
            host.warmup(500)
        config = hosts[0].config_for(DAYTIME_UNIKERNEL)
        record = hosts[0].create_vm(config)
        domain = record.domain
        link = Link(sim, latency_ms=0.5, bandwidth_mbps=1000.0)
        for source, destination in ((0, 1), (1, 2)):
            proc = sim.process(migrate(
                hosts[source].checkpointer,
                hosts[destination].checkpointer, domain, config, link))
            domain = sim.run(until=proc)
        assert domain.state == DomainState.RUNNING
        assert hosts[0].running_guests == 0
        assert hosts[1].running_guests == 0
        assert hosts[2].running_guests == 1


class TestGuestBootAgainstLiveToolstackState:
    def test_manual_boot_uses_toolstack_published_entries(self):
        """A guest booted by hand against the xl-populated XenStore reads
        exactly what the backend published during create."""
        host = Host(variant="xl")
        record = host.create_vm(DAYTIME_UNIKERNEL, boot=False)
        domain = record.domain
        host.hypervisor.domctl_unpause(domain)

        def manual():
            report = yield from boot_guest(
                host.sim, host.hypervisor, domain, DAYTIME_UNIKERNEL,
                xenstore=host.xenstore)
            return report

        proc = host.sim.process(manual())
        report = host.sim.run(until=proc)
        assert report.device_ms > 0
        assert host.hypervisor.event_channels.count_for(domain.domid) == 1


class TestDeterminism:
    def test_identical_seeds_identical_storms(self):
        def storm(seed):
            host = Host(variant="xl", seed=seed)
            return [host.create_vm(DAYTIME_UNIKERNEL).create_ms
                    for _ in range(30)]

        assert storm(7) == storm(7)

    def test_seed_changes_stochastic_components(self):
        from repro.containers import ProcessSpawner
        from repro.sim import RngStream, Simulator

        def latencies(seed):
            sim = Simulator()
            spawner = ProcessSpawner(sim, RngStream(seed, "proc"))
            out = []
            for _ in range(10):
                proc = sim.process(spawner.spawn())
                before = sim.now
                sim.run(until=proc)
                out.append(sim.now - before)
            return out

        assert latencies(1) == latencies(1)
        assert latencies(1) != latencies(2)
