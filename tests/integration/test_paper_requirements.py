"""The §2 requirements, encoded as a contract the platform must honor.

"we are interested in a number of characteristics typical of containers:
Fast Instantiation ... High Instance Density ... Pause/unpause."
"""

import pytest

from repro.core import AMD_OPTERON_64, Host
from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL


class TestFastInstantiation:
    """Containers start in hundreds of ms or less; VMs must match."""

    def test_lightvm_instantiates_in_single_digit_milliseconds(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.total_ms < 10.0

    def test_comparable_to_fork_exec(self):
        """§1: "2.3ms, comparable to fork/exec on Linux (1ms)"."""
        from repro.containers import ProcessSpawner
        from repro.sim import RngStream
        host = Host(variant="lightvm")
        host.warmup(500)
        vm_ms = host.create_vm(NOOP_UNIKERNEL).total_ms
        spawner = ProcessSpawner(host.sim, RngStream(0, "p"))
        before = host.sim.now
        host.sim.run(until=host.sim.process(spawner.fork()))
        fork_ms = host.sim.now - before
        assert vm_ms < fork_ms * 4  # same ballpark, not orders apart

    def test_two_orders_faster_than_docker(self):
        """§1: "two orders of magnitude faster than Docker"."""
        from repro.containers import DockerEngine
        from repro.sim import RngStream, Simulator
        host = Host(variant="lightvm")
        host.warmup(500)
        vm_ms = host.create_vm(NOOP_UNIKERNEL).total_ms
        sim = Simulator()
        engine = DockerEngine(sim, RngStream(0, "d"), 128 * 1024)
        before = sim.now

        def one():
            yield from engine.start_container()
        sim.run(until=sim.process(one()))
        docker_ms = sim.now - before
        assert docker_ms / vm_ms > 50


class TestHighDensity:
    """§2: a thousand or more instances on a single host."""

    def test_hundreds_of_guests_on_the_big_host(self):
        host = Host(spec=AMD_OPTERON_64, variant="lightvm",
                    pool_target=330,
                    shell_memory_kb=NOOP_UNIKERNEL.memory_kb)
        host.warmup(8000)
        for _ in range(300):
            host.create_vm(NOOP_UNIKERNEL)
        assert host.running_guests == 300
        # Memory headroom for thousands more at this footprint.
        per_guest_kb = NOOP_UNIKERNEL.memory_kb
        headroom = host.hypervisor.memory.free_kb // per_guest_kb
        assert headroom > 7000

    def test_per_vm_footprint_matches_headline(self):
        """§1: "per-VM memory footprints of as little as ... 3.6MB
        (running)"."""
        assert DAYTIME_UNIKERNEL.memory_kb <= 3700


class TestPauseUnpause:
    """§2: paused and unpaused quickly, Lambda-style freeze/thaw."""

    def test_freeze_thaw_cycle_is_fast(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        before = host.sim.now
        host.pause_vm(record.domain)
        host.unpause_vm(record.domain)
        assert host.sim.now - before < 5.0

    def test_freeze_raises_effective_density(self):
        """Paused guests stop consuming CPU, so more instances fit the
        same cores."""
        host = Host(variant="lightvm", pool_target=40)
        host.warmup(1500)
        from repro.guests import TINYX
        domains = [host.create_vm(TINYX).domain for _ in range(30)]
        busy = host.cpu_utilization()
        for domain in domains:
            host.pause_vm(domain)
        assert host.cpu_utilization() < busy
