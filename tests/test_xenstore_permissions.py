"""Tests for XenStore node permissions (ACLs)."""

import pytest

from repro.core import Host
from repro.guests import DAYTIME_UNIKERNEL
from repro.sim import Simulator
from repro.xenstore import (NodePerms, PERM_BOTH, PERM_NONE, PERM_READ,
                            PERM_WRITE, PermEntry, PermissionError_,
                            XenStoreDaemon)


def run_op(sim, gen):
    def wrapper():
        result = yield from gen
        return result
    return sim.run(until=sim.process(wrapper()))


class TestAclModel:
    def test_owner_always_has_full_access(self):
        perms = NodePerms.owned_by(5)
        assert perms.allows_read(5)
        assert perms.allows_write(5)

    def test_default_applies_to_unlisted(self):
        closed = NodePerms.owned_by(5, default=PERM_NONE)
        assert not closed.allows_read(7)
        open_read = NodePerms.owned_by(5, default=PERM_READ)
        assert open_read.allows_read(7)
        assert not open_read.allows_write(7)

    def test_grant_overrides_default(self):
        perms = NodePerms.owned_by(5).grant(7, PERM_BOTH)
        assert perms.allows_write(7)
        assert not perms.allows_write(8)

    def test_regrant_replaces_entry(self):
        perms = NodePerms.owned_by(5).grant(7, PERM_BOTH)
        perms = perms.grant(7, PERM_READ)
        assert perms.allows_read(7)
        assert not perms.allows_write(7)
        assert len(perms.entries) == 2

    def test_dom0_bypasses_everything(self):
        perms = NodePerms.owned_by(5, default=PERM_NONE)
        assert perms.allows_read(0)
        assert perms.allows_write(0)

    def test_invalid_perm_rejected(self):
        with pytest.raises(ValueError):
            PermEntry(1, "x")

    def test_empty_acl_rejected(self):
        with pytest.raises(ValueError):
            NodePerms([])


class TestDaemonEnforcement:
    def _daemon(self, enforce=True):
        sim = Simulator()
        return sim, XenStoreDaemon(sim, enforce_permissions=enforce)

    def test_guest_cannot_read_foreign_node(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(0, "/secret", "v"))
        with pytest.raises(PermissionError_):
            run_op(sim, xs.read(7, "/secret"))

    def test_guest_can_read_after_grant(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(0, "/shared", "v"))
        perms = NodePerms.owned_by(0).grant(7, PERM_READ)
        run_op(sim, xs.set_perms(0, "/shared", perms))
        assert run_op(sim, xs.read(7, "/shared")) == "v"
        with pytest.raises(PermissionError_):
            run_op(sim, xs.write(7, "/shared", "nope"))

    def test_write_grant(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(0, "/box", "v"))
        perms = NodePerms.owned_by(0).grant(7, PERM_WRITE)
        run_op(sim, xs.set_perms(0, "/box", perms))
        run_op(sim, xs.write(7, "/box", "mine"))
        assert xs.tree.read("/box") == "mine"

    def test_owner_reads_own_node(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(7, "/local/domain/7/data", "v"))
        assert run_op(sim, xs.read(7, "/local/domain/7/data")) == "v"

    def test_only_owner_or_dom0_sets_perms(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(5, "/mine", "v"))
        with pytest.raises(PermissionError_):
            run_op(sim, xs.set_perms(7, "/mine",
                                        NodePerms.owned_by(7)))
        run_op(sim, xs.set_perms(5, "/mine", NodePerms.owned_by(5)))

    def test_enforcement_off_by_default(self):
        sim, xs = self._daemon(enforce=False)
        run_op(sim, xs.write(0, "/secret", "v"))
        assert run_op(sim, xs.read(7, "/secret")) == "v"

    def test_get_perms_reports_implicit_owner(self):
        sim, xs = self._daemon()
        run_op(sim, xs.write(5, "/node", "v"))
        perms = run_op(sim, xs.get_perms(0, "/node"))
        assert perms.owner_domid == 5


class TestProtocolGrantsFrontendAccess:
    def test_xl_boot_works_with_enforcement_on(self):
        """The toolstack grants the front-end read access to its back-end
        directory, so a guest boots even under strict ACLs."""
        host = Host(variant="xl")
        host.xenstore.enforce_permissions = True
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.boot_ms > 0

    def test_other_guests_cannot_read_foreign_backend(self):
        host = Host(variant="xl")
        host.xenstore.enforce_permissions = True
        record = host.create_vm(DAYTIME_UNIKERNEL)
        back = "/local/domain/0/backend/vif/%d/0" % record.domain.domid
        stranger = record.domain.domid + 1000

        def snoop():
            value = yield from host.xenstore.read(
                stranger, back + "/event-channel")
            return value

        with pytest.raises(PermissionError_):
            host.sim.run(until=host.sim.process(snoop()))
