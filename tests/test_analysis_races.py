"""Tests for the lock-order & sim-race analysis (repro.analysis.races).

Three layers: the seeded fixture programs must produce *exactly* the
expected finding ids at the expected lines (no more, no less); the real
tree under ``src/repro`` must analyze clean with the committed
lock-order baseline unchanged (including the ascending-shard contract of
the sharded daemon); and the report/suppression/format plumbing must
round-trip.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis.races import (LockOrderGraph, OrderEdge, analyze_paths,
                                  analyze_source, load_baseline,
                                  normalize_lock_name, save_baseline)

REPO = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = pathlib.Path(__file__).resolve().parent / "race_fixtures"
SRC = REPO / "src" / "repro"
BASELINE = REPO / "benchmarks" / "baseline_lockorder.json"


# ----------------------------------------------------------------------
# Seeded fixtures: exact ids and lines
# ----------------------------------------------------------------------

#: fixture module -> [(rule_id, line)] expected, in report order.
FIXTURE_EXPECTATIONS = {
    "deadlock": [("RPR101", 23)],
    "lock_leak": [("RPR102", 19)],
    "unordered": [("RPR101", 26)],
    "stale_rmw": [("RPR103", 23)],
    "clean": [],
}


@pytest.mark.parametrize("name", sorted(FIXTURE_EXPECTATIONS))
def test_fixture_findings_exact(name):
    report = analyze_paths([FIXTURES / ("%s.py" % name)])
    got = [(f.rule_id, f.line) for f in report.findings]
    assert got == FIXTURE_EXPECTATIONS[name]


def test_deadlock_fixture_names_the_cycle():
    report = analyze_paths([FIXTURES / "deadlock.py"])
    (finding,) = report.findings
    assert "fix.tree" in finding.message
    assert "fix.journal" in finding.message


def test_unordered_fixture_names_the_family():
    report = analyze_paths([FIXTURES / "unordered.py"])
    (finding,) = report.findings
    assert "fix.shard[*]" in finding.message


def test_stale_rmw_fixture_names_the_location():
    report = analyze_paths([FIXTURES / "stale_rmw.py"])
    (finding,) = report.findings
    assert "self.booted" in finding.message


# ----------------------------------------------------------------------
# The real tree: clean, and the baseline asserts the shard contract
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tree_report():
    return analyze_paths([SRC])


def test_tree_is_clean(tree_report):
    rendered = "\n".join(f.render() for f in tree_report.findings)
    assert tree_report.findings == [], rendered
    assert tree_report.modules > 90
    assert tree_report.functions > 700


def test_tree_has_ascending_shard_self_edge(tree_report):
    edge = tree_report.graph.edges[("xenstore.shard[*]",
                                    "xenstore.shard[*]")]
    assert edge.ascending, ("the daemon's all-shards walk must be "
                            "provably ascending")


def test_tree_matches_committed_baseline(tree_report):
    baseline = load_baseline(BASELINE)
    assert tree_report.graph.diff_baseline(baseline) == []
    assert tree_report.graph.to_baseline() == baseline


def test_committed_baseline_pins_ascending_shards():
    baseline = load_baseline(BASELINE)
    shard_edges = [e for e in baseline["edges"]
                   if e["src"] == "xenstore.shard[*]"
                   and e["dst"] == "xenstore.shard[*]"]
    assert shard_edges == [{"src": "xenstore.shard[*]",
                            "dst": "xenstore.shard[*]",
                            "ascending": True}]


def test_baseline_drift_detected(tree_report, tmp_path):
    baseline = load_baseline(BASELINE)
    mutated = json.loads(json.dumps(baseline))
    for edge in mutated["edges"]:
        if edge["src"] == edge["dst"]:
            edge["ascending"] = False
    mutated["nodes"].append("phantom.lock")
    drift = tree_report.graph.diff_baseline(mutated)
    assert any("ascending" in message for message in drift)
    assert any("phantom.lock" in message for message in drift)


def test_save_baseline_round_trips(tree_report, tmp_path):
    out = tmp_path / "baseline.json"
    save_baseline(tree_report, out)
    assert load_baseline(out) == tree_report.graph.to_baseline()


# ----------------------------------------------------------------------
# Mechanics: labels, suppression, report plumbing
# ----------------------------------------------------------------------

class TestNormalizeLockName:
    def test_percent_field_wildcards(self):
        assert normalize_lock_name("xenstore.shard[%d]") == \
            "xenstore.shard[*]"

    def test_format_field_wildcards(self):
        assert normalize_lock_name("pool.{}") == "pool.*"

    def test_concrete_index_wildcards(self):
        assert normalize_lock_name("xenstore.shard[3]") == \
            "xenstore.shard[*]"

    def test_plain_name_unchanged(self):
        assert normalize_lock_name("jit.spawner") == "jit.spawner"


def _stale_rmw_source(noqa=""):
    return textwrap.dedent("""
        class Host:
            def __init__(self, sim):
                self.sim = sim
                self.booted = 0

            def admit(self):
                seen = self.booted
                yield self.sim.timeout(1.0)
                self.booted = seen + 1%s


        def run(sim):
            host = Host(sim)
            sim.process(host.admit())
            sim.process(host.admit())
        """ % noqa)


class TestSuppression:
    def test_justified_noqa_suppresses(self):
        report = analyze_source(_stale_rmw_source(
            "  # noqa: RPR103 -- admissions serialize on the queue"))
        assert report.findings == []

    def test_unjustified_noqa_reports_rpr000(self):
        report = analyze_source(_stale_rmw_source("  # noqa: RPR103"))
        assert [f.rule_id for f in report.findings] == ["RPR000"]

    def test_without_noqa_reports_rpr103(self):
        report = analyze_source(_stale_rmw_source())
        assert [f.rule_id for f in report.findings] == ["RPR103"]


def test_syntax_error_reports_rpr999():
    report = analyze_source("def broken(:\n")
    assert [f.rule_id for f in report.findings] == ["RPR999"]


def test_report_json_shape(tree_report):
    payload = tree_report.to_json()
    assert payload["findings"] == []
    assert payload["graph"]["version"] == 1
    assert "xenstore.shard[*]" in payload["graph"]["nodes"]
    assert payload["modules"] == tree_report.modules


def test_graph_render_marks_ascending(tree_report):
    rendered = tree_report.graph.render()
    assert "xenstore.shard[*] =asc=> xenstore.shard[*]" in rendered


def test_cycle_detection_on_synthetic_graph():
    graph = LockOrderGraph()
    graph.add_edge(OrderEdge(src="a", dst="b", ascending=False,
                             path="x.py", line=1, via="f"))
    graph.add_edge(OrderEdge(src="b", dst="a", ascending=False,
                             path="x.py", line=2, via="g"))
    graph.add_edge(OrderEdge(src="b", dst="c", ascending=False,
                             path="x.py", line=3, via="h"))
    cycles = graph.cycles()
    assert len(cycles) == 1
    labels = {edge.src for edge in cycles[0]}
    labels |= {edge.dst for edge in cycles[0]}
    assert labels >= {"a", "b"}


def test_ascending_self_edge_is_not_a_cycle():
    graph = LockOrderGraph()
    graph.add_edge(OrderEdge(src="s[*]", dst="s[*]", ascending=True,
                             path="x.py", line=1, via="f"))
    assert graph.cycles() == []


def test_non_ascending_self_edge_is_a_cycle():
    graph = LockOrderGraph()
    graph.add_edge(OrderEdge(src="s[*]", dst="s[*]", ascending=False,
                             path="x.py", line=1, via="f"))
    (cycle,) = graph.cycles()
    assert [edge.src for edge in cycle] == ["s[*]"]
