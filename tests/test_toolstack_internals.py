"""Tests for toolstack internals: shell pool, hotplug, phases, quotas."""

import pytest

from repro.hypervisor import DomainState, Hypervisor
from repro.noxs import NoxsModule
from repro.sim import Simulator
from repro.toolstack import (BashHotplug, ChaosDaemon, NullBridge,
                             PhaseRecorder, Xendevd)
from repro.xenstore import QuotaExceededError, XenStoreDaemon


def make_platform():
    sim = Simulator()
    hv = Hypervisor(sim, memory_kb=8 * 1024 * 1024, total_cores=4,
                    dom0_cores=1, dom0_memory_kb=64 * 1024)
    return sim, hv


def run(sim, gen):
    def wrapper():
        result = yield from gen
        return result
    return sim.run(until=sim.process(wrapper()))


class TestShellPool:
    def test_daemon_fills_pool_to_target(self):
        sim, hv = make_platform()
        daemon = ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv),
                             pool_target=5)
        daemon.start()
        sim.run(until=sim.now + 1000)
        assert len(daemon.pool) == 5
        assert daemon.shells_prepared == 5

    def test_shells_are_hypervisor_registered(self):
        sim, hv = make_platform()
        daemon = ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv),
                             pool_target=3)
        daemon.start()
        sim.run(until=sim.now + 1000)
        shells = [d for d in hv.domains.values()
                  if d.state is DomainState.SHELL]
        assert len(shells) == 3
        assert all(d.device_page is not None for d in shells)

    def test_pool_replenishes_after_take(self):
        sim, hv = make_platform()
        daemon = ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv),
                             pool_target=3)
        daemon.start()
        sim.run(until=sim.now + 1000)
        shell = run(sim, daemon.get_shell(None))
        assert shell.prepared_devices
        sim.run(until=sim.now + 1000)
        assert len(daemon.pool) == 3

    def test_get_shell_waits_when_pool_empty(self):
        sim, hv = make_platform()
        daemon = ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv),
                             pool_target=1)
        daemon.start()
        # No warmup: the first get must wait for the first prepare.
        shell = run(sim, daemon.get_shell(None))
        assert shell.domain.state is DomainState.SHELL
        assert sim.now > 0

    def test_stop_halts_replenishment(self):
        sim, hv = make_platform()
        daemon = ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv),
                             pool_target=2)
        daemon.start()
        sim.run(until=sim.now + 1000)
        daemon.stop()
        run(sim, daemon.get_shell(None))
        sim.run(until=sim.now + 2000)
        assert len(daemon.pool) < 2

    def test_xenstore_mode_prewrites_skeleton(self):
        sim, hv = make_platform()
        xs = XenStoreDaemon(sim)
        daemon = ChaosDaemon(sim, hv, xenstore=xs, pool_target=1)
        daemon.start()
        sim.run(until=sim.now + 1000)
        shell = run(sim, daemon.get_shell(None))
        base = "/local/domain/%d" % shell.domain.domid
        assert xs.tree.exists(base + "/shell")
        assert xs.tree.exists(base + "/device/vif/0/backend")

    def test_validation(self):
        sim, hv = make_platform()
        with pytest.raises(ValueError):
            ChaosDaemon(sim, hv)  # no control plane
        with pytest.raises(ValueError):
            ChaosDaemon(sim, hv, noxs=NoxsModule(sim, hv), pool_target=0)


class TestHotplug:
    def test_bash_much_slower_than_xendevd(self):
        sim = Simulator()
        bash = BashHotplug(sim)
        start = sim.now
        run(sim, bash.attach(1, "vif1.0"))
        bash_ms = sim.now - start
        xend = Xendevd(sim)
        start = sim.now
        run(sim, xend.attach(1, "vif1.1"))
        xendevd_ms = sim.now - start
        assert bash_ms > xendevd_ms * 20

    def test_both_update_bridge_ports(self):
        sim = Simulator()
        bridge = NullBridge()
        for mechanism in (BashHotplug(sim, bridge=bridge),
                          Xendevd(sim, bridge=bridge)):
            run(sim, mechanism.attach(7, "vif7.0"))
            assert bridge.ports["vif7.0"] == 7
            run(sim, mechanism.detach(7, "vif7.0"))
            assert "vif7.0" not in bridge.ports

    def test_invocation_counting(self):
        sim = Simulator()
        xend = Xendevd(sim)
        run(sim, xend.attach(1, "a"))
        run(sim, xend.detach(1, "a"))
        assert xend.invocations == 2


class TestPhaseRecorder:
    def test_attributes_time_to_open_phase(self):
        sim = Simulator()
        recorder = PhaseRecorder(sim)
        recorder.start("config")
        sim.timeout(5.0)
        sim.run()
        recorder.start("devices")
        sim.timeout(3.0)
        sim.run()
        recorder.stop()
        assert recorder.totals["config"] == pytest.approx(5.0)
        assert recorder.totals["devices"] == pytest.approx(3.0)
        assert recorder.total_ms == pytest.approx(8.0)

    def test_unknown_phase_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PhaseRecorder(sim).start("quantum")

    def test_stop_without_open_phase_is_noop(self):
        sim = Simulator()
        PhaseRecorder(sim).stop()


class TestQuota:
    def test_guest_hits_node_quota(self):
        sim = Simulator()
        xs = XenStoreDaemon(sim)
        xs.costs.quota_nodes_per_domain = 10
        with pytest.raises(QuotaExceededError):
            for index in range(50):
                run(sim, xs.write(7, "/local/domain/7/junk%d" % index,
                                     "x"))

    def test_dom0_exempt_from_quota(self):
        sim = Simulator()
        xs = XenStoreDaemon(sim)
        xs.costs.quota_nodes_per_domain = 5
        for index in range(50):
            run(sim, xs.write(0, "/admin/%d" % index, "x"))

    def test_overwrite_does_not_consume_quota(self):
        sim = Simulator()
        xs = XenStoreDaemon(sim)
        xs.costs.quota_nodes_per_domain = 3
        run(sim, xs.write(7, "/local/domain/7/a", "1"))
        for _ in range(30):
            run(sim, xs.write(7, "/local/domain/7/a", "again"))

    def test_quota_disabled_with_zero(self):
        sim = Simulator()
        xs = XenStoreDaemon(sim)
        xs.costs.quota_nodes_per_domain = 0
        for index in range(100):
            run(sim, xs.write(7, "/spam/%d" % index, "x"))


class TestReviewFixes:
    """Regression tests for the code-review findings."""

    def test_rm_returns_quota(self):
        sim = Simulator()
        xs = XenStoreDaemon(sim)
        xs.costs.quota_nodes_per_domain = 5
        # Write/remove cycles must not exhaust the quota.
        for cycle in range(20):
            run(sim, xs.write(7, "/local/domain/7/tmp", "x"))
            run(sim, xs.rm(7, "/local/domain/7/tmp"))

    def test_shell_resize_oom_rolls_back(self):
        import pytest as _pytest
        from repro.hypervisor import OutOfMemoryError
        sim, hv = make_platform()
        shell = hv.domctl_create(shell=True, memory_kb=4096)
        with _pytest.raises(OutOfMemoryError):
            hv.domctl_resize_shell(shell, hv.memory.total_kb * 2)
        # The shell still owns its original reservation, consistently.
        assert hv.memory.owned_kb(shell.domid) == 4096
        assert shell.memory_kb == 4096

    def test_negative_yield_fails_only_the_process(self):
        import pytest as _pytest
        sim = Simulator()

        def buggy():
            yield -5.0

        def healthy(log):
            yield 1.0
            log.append(sim.now)

        log = []
        proc = sim.process(buggy())
        sim.process(healthy(log))
        with _pytest.raises(ValueError):
            sim.run(until=proc)
        sim.run()
        assert log == [1.0]  # the rest of the simulation survived
