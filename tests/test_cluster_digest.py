"""Backend digest-identity: the tentpole determinism guarantee.

The merged cluster timeline must be a pure function of
(scenario, seed, n_hosts) — independent of the execution backend and of
the worker count.  These tests pin ``backend="procs"`` byte-identical to
``backend="inline"`` across scenarios × seeds × worker counts, including
fault-injected and recovery-enabled runs.
"""

import pytest

from repro.cluster import Cluster, boot_storm, migration_churn

SEEDS = (0, 1, 2)
WORKER_COUNTS = (1, 2, 4)


def _boot_storm(seed):
    return boot_storm(hosts=4, seed=seed, guests=8, requests=24)


def _churn(seed):
    return migration_churn(hosts=4, seed=seed, guests=8, migrations=2,
                           requests=24)


SCENARIOS = {"boot-storm": _boot_storm, "migration-churn": _churn}


def _inline(config):
    return Cluster(config, backend="inline").run()


def _procs(config, workers):
    return Cluster(config, backend="procs", workers=workers).run()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_procs_matches_inline(scenario, seed):
    config = SCENARIOS[scenario](seed)
    reference = _inline(config)
    for workers in WORKER_COUNTS:
        result = _procs(SCENARIOS[scenario](seed), workers)
        assert result.digest == reference.digest, \
            "%s seed=%d workers=%d diverged" % (scenario, seed, workers)
        assert result.host_digests == reference.host_digests
        assert result.stats == reference.stats
        assert result.epochs == reference.epochs


def test_worker_count_does_not_leak_into_result():
    """Only the declared workers field may differ between worker counts."""
    runs = [_procs(_boot_storm(0), w) for w in WORKER_COUNTS]
    digests = {r.digest for r in runs}
    assert len(digests) == 1
    assert [r.workers for r in runs] == list(WORKER_COUNTS)


def test_faulty_run_matches_inline():
    def config():
        return migration_churn(hosts=3, seed=1, guests=6, migrations=2,
                               requests=18, fault_rate=0.2,
                               variant="chaos+xs")
    reference = _inline(config())
    result = _procs(config(), 2)
    assert result.digest == reference.digest
    assert result.stats == reference.stats


def test_recovery_run_matches_inline():
    def config():
        return boot_storm(hosts=3, seed=2, guests=6, requests=18,
                          fault_rate=0.2, recovery=True)
    reference = _inline(config())
    result = _procs(config(), 3)
    assert result.digest == reference.digest
    assert result.stats == reference.stats


def test_workers_clamped_to_host_count():
    result = _procs(boot_storm(hosts=2, seed=0, guests=4), 16)
    assert result.workers == 2
    assert result.digest == _inline(boot_storm(hosts=2, seed=0,
                                               guests=4)).digest


def test_first_fit_placement_matches_inline():
    def config():
        return boot_storm(hosts=3, seed=0, guests=6, requests=12,
                          placement="first-fit")
    assert _procs(config(), 2).digest == _inline(config()).digest
