"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly-to-moon"])

    def test_create_defaults(self):
        args = build_parser().parse_args(["create"])
        assert args.variant == "lightvm"
        assert args.image == "daytime"
        assert args.count == 10

    def test_invalid_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["create", "--variant", "kvm"])

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.variant == "lightvm"
        assert args.rate == 0.02
        assert args.points == "*"

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []

    def test_sanitize_defaults(self):
        args = build_parser().parse_args(["sanitize"])
        assert args.variant == "lightvm"
        assert args.rate == 0.0
        assert args.runs == 2

    def test_sanitize_rejects_single_run(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sanitize", "--runs", "0"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.variant == "lightvm"
        assert args.count == 10
        assert args.out is None

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.variant == "lightvm"
        assert args.json is False


class TestCommands:
    def test_images_lists_catalogue(self, capsys):
        assert main(["images"]) == 0
        out = capsys.readouterr().out
        assert "daytime" in out
        assert "debian" in out

    def test_create_prints_summary(self, capsys):
        assert main(["create", "--count", "3", "--variant",
                     "chaos+noxs"]) == 0
        out = capsys.readouterr().out
        assert "booted 3 x daytime" in out
        assert "mean=" in out

    def test_faults_storm_reports_clean_invariants(self, capsys):
        assert main(["faults", "--count", "3", "--variant", "xl",
                     "--rate", "0.1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault storm: 3 x daytime under xl" in out
        assert "fault point" in out
        assert "invariants: clean" in out

    def test_faults_scoped_to_one_point(self, capsys):
        assert main(["faults", "--count", "2", "--variant", "chaos+xs",
                     "--rate", "1.0", "--points", "hotplug.*",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "hotplug.xendevd" in out
        # Occurrences are counted everywhere, but only the scoped point
        # actually injects faults.
        for line in out.splitlines():
            if line.startswith("xenstore."):
                assert line.split()[-1] == "0"
            if line.startswith("hotplug.xendevd"):
                assert line.split()[-1] != "0"

    def test_checkpoint_round_trips(self, capsys):
        assert main(["checkpoint", "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "save:" in out and "restore:" in out

    def test_tinyx_build(self, capsys):
        assert main(["tinyx-build", "micropython", "--no-trim"]) == 0
        out = capsys.readouterr().out
        assert "packages:" in out
        assert "image:" in out

    def test_usecase_tls(self, capsys):
        assert main(["usecase", "tls"]) == 0
        out = capsys.readouterr().out
        assert "tinyx" in out
        assert "unikernel" in out

    def test_usecase_jit_small(self, capsys):
        assert main(["usecase", "jit", "--scale", "30"]) == 0
        assert "median" in capsys.readouterr().out

    def test_usecase_compute_small(self, capsys):
        assert main(["usecase", "compute", "--scale", "20"]) == 0
        assert "create mean" in capsys.readouterr().out

    def test_usecase_firewalls_small(self, capsys):
        assert main(["usecase", "firewalls", "--scale", "20"]) == 0
        assert "users" in capsys.readouterr().out

    def test_syscalls_dataset(self, capsys):
        assert main(["syscalls"]) == 0
        out = capsys.readouterr().out
        assert "2002" in out

    def test_deterministic_output(self, capsys):
        main(["create", "--count", "3", "--seed", "5"])
        first = capsys.readouterr().out
        main(["create", "--count", "3", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_trace_reports_attribution(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--count", "3", "--variant", "xl",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "traced 3 x daytime under xl" in out
        assert "phase attribution" in out
        assert "xenstore" in out
        assert "wrote" in out
        import json
        document = json.loads(out_file.read_text())
        assert document["traceEvents"]

    def test_metrics_renders_registry(self, capsys):
        assert main(["metrics", "--count", "3",
                     "--variant", "chaos+noxs"]) == 0
        out = capsys.readouterr().out
        assert "hypervisor/hypercalls/domctl_create" in out
        assert "span/noxs.ioctl_create" in out

    def test_metrics_json_mode(self, capsys):
        assert main(["metrics", "--count", "3", "--variant", "lightvm",
                     "--json"]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["memory/guest_kb"]["kind"] == "gauge"
        assert payload["shellpool/target"]["value"] >= 3

    def test_trace_deterministic_output(self, capsys):
        main(["trace", "--count", "3", "--seed", "5"])
        first = capsys.readouterr().out
        main(["trace", "--count", "3", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second


class TestLintCommand:
    def test_installed_package_lints_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_fail_the_run(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nfor x in {1, 2}:\n    pass\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR003" in out
        assert "2 finding(s)" in out

    def test_justified_suppression_passes(self, tmp_path, capsys):
        clean = tmp_path / "suppressed.py"
        clean.write_text(
            "import random  # noqa: RPR001 -- fixture randomness\n")
        assert main(["lint", str(clean)]) == 0

    def test_unjustified_suppression_fails(self, tmp_path, capsys):
        bad = tmp_path / "bare.py"
        bad.write_text("import random  # noqa: RPR001\n")
        assert main(["lint", str(bad)]) == 1
        assert "RPR000" in capsys.readouterr().out

    def test_missing_path_is_a_clean_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "gone.py")]) == 2
        err = capsys.readouterr().err
        assert "no such file" in err
        assert "Traceback" not in err


class TestSanitizeCommand:
    def test_fault_free_storm_is_replay_identical(self, capsys):
        assert main(["sanitize", "--count", "3", "--variant",
                     "chaos+noxs"]) == 0
        out = capsys.readouterr().out
        assert "replay: IDENTICAL" in out
        assert "sanitizers: clean" in out
        digests = [line.split()[-1] for line in out.splitlines()
                   if line.startswith("run ")]
        assert len(digests) == 2 and len(set(digests)) == 1

    def test_faulted_storm_is_replay_identical(self, capsys):
        assert main(["sanitize", "--count", "3", "--variant", "xl",
                     "--rate", "0.1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "replay: IDENTICAL" in out

    def test_three_way_replay(self, capsys):
        assert main(["sanitize", "--count", "2", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("digest") == 3


class TestUnikernelBuildCommand:
    def test_single_app_with_link_map(self, capsys):
        assert main(["unikernel-build", "daytime"]) == 0
        out = capsys.readouterr().out
        assert "unikernel-daytime" in out
        assert "link map:" in out
        assert "lwip" in out

    def test_all_apps(self, capsys):
        assert main(["unikernel-build"]) == 0
        out = capsys.readouterr().out
        assert "unikernel-noop" in out
        assert "unikernel-clickos-firewall" in out


class TestBenchCommands:
    @staticmethod
    def _write(directory, figure, wall_clock_s):
        import json
        (directory / ("BENCH_%s.json" % figure)).write_text(json.dumps(
            {"figure": figure, "title": figure, "scale": "quick",
             "wall_clock_s": wall_clock_s, "data": {}}))

    def test_bench_trend_prints_deltas(self, tmp_path, capsys):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        self._write(old_dir, "fig10", 4.0)
        self._write(new_dir, "fig10", 2.0)
        assert main(["bench-trend", str(old_dir), str(new_dir)]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "-50.0%" in out

    def test_bench_trend_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["bench-trend", str(tmp_path / "a"),
                     str(tmp_path / "b")]) == 2
        assert "no such" in capsys.readouterr().err.lower()

    def test_bench_gate_pass_and_fail(self, tmp_path, capsys):
        import json
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"metric": "timer_wheel", "required_speedup": 2.0,
             "events_per_sec": 100, "tolerance": 0.5}))

        def result_file(speedup):
            path = tmp_path / "BENCH_engine.json"
            path.write_text(json.dumps(
                {"figure": "engine", "data": {"timer_wheel": {
                    "opt_events_per_sec": int(100 * speedup),
                    "ref_events_per_sec": 100, "speedup": speedup}}}))
            return path

        good = result_file(2.5)
        assert main(["bench-gate", "--result", str(good),
                     "--baseline", str(baseline)]) == 0
        assert "PASS" in capsys.readouterr().out

        bad = result_file(1.2)
        assert main(["bench-gate", "--result", str(bad),
                     "--baseline", str(baseline)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_gate_missing_result_exits_2(self, tmp_path, capsys):
        assert main(["bench-gate", "--result",
                     str(tmp_path / "missing.json")]) == 2
        assert capsys.readouterr().err

    def test_bench_gate_figures_only(self, tmp_path, capsys):
        import json
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"figures": {"fig10": {"scale": "quick", "require": {
                "lightvm_count": {"min": 8000}}}}}))
        figures = tmp_path / "results"
        figures.mkdir()

        def fig10(count):
            (figures / "BENCH_fig10.json").write_text(json.dumps(
                {"figure": "fig10", "scale": "quick",
                 "data": {"lightvm_count": count}}))

        # No --result file: the engine check is skipped, figures gate.
        fig10(8000)
        assert main(["bench-gate", "--result",
                     str(tmp_path / "missing.json"),
                     "--baseline", str(baseline),
                     "--figures", str(figures)]) == 0
        out = capsys.readouterr().out
        assert "skipping the engine check" in out
        assert "PASS" in out

        fig10(2000)
        assert main(["bench-gate", "--result",
                     str(tmp_path / "missing.json"),
                     "--baseline", str(baseline),
                     "--figures", str(figures)]) == 1
        assert "below the required minimum" in capsys.readouterr().out
