"""RetryPolicy deadline budgets: ``budget_ms`` and RetryBudgetExhausted.

The budget caps the *cumulative backoff* one operation may sleep, so a
recovery storm cannot pile unbounded simulated hours onto one request.
``budget_ms=None`` (the default everywhere) disables the cap, which is
what keeps existing replay digests unchanged.
"""

import pytest

from repro.faults import (FaultPlan, MessageTimeout, RetryBudgetExhausted,
                          RetryExhausted, RetryPolicy, retry_call,
                          retry_generator)
from repro.sim import Simulator
from repro.toolstack.hotplug import BashHotplug, HotplugError
from repro.xenstore import XenStoreDaemon, XsClient


def drive(sim, gen):
    result = []

    def runner():
        result.append((yield from gen))
    sim.run(until=sim.process(runner()))
    return result[0]


class Flaky:
    """Callable failing the first ``failures`` times."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ValueError("transient %d" % self.calls)
        return "ok"


class TestPolicyArithmetic:
    def test_over_budget_is_checked_before_the_sleep(self):
        policy = RetryPolicy(budget_ms=10.0)
        assert not policy.over_budget(0.0, 10.0)
        assert policy.over_budget(0.0, 10.1)
        assert policy.over_budget(6.0, 5.0)

    def test_none_budget_never_trips(self):
        policy = RetryPolicy(budget_ms=None)
        assert not policy.over_budget(1e9, 1e9)


class TestRetryHelpers:
    def test_retry_call_spends_then_raises_typed(self):
        sim = Simulator()
        policy = RetryPolicy(max_retries=50, base_ms=4.0, multiplier=1.0,
                             cap_ms=4.0, jitter=0.0, budget_ms=10.0)
        flaky = Flaky(failures=99)
        with pytest.raises(RetryBudgetExhausted):
            drive(sim, retry_call(sim, policy, None, flaky, (ValueError,)))
        # 4 + 4 slept, the third backoff would overspend: 3 attempts.
        assert flaky.calls == 3
        assert sim.now == pytest.approx(8.0)

    def test_retry_generator_honours_the_budget(self):
        sim = Simulator()
        policy = RetryPolicy(max_retries=50, base_ms=4.0, multiplier=1.0,
                             cap_ms=4.0, jitter=0.0, budget_ms=7.9)

        def always_fails():
            yield sim.timeout(1.0)
            raise ValueError("nope")

        with pytest.raises(RetryBudgetExhausted):
            drive(sim, retry_generator(sim, policy, None, always_fails,
                                       (ValueError,)))

    def test_budget_exhaustion_is_a_retry_exhausted(self):
        # Call sites catching the old RetryExhausted keep working.
        assert issubclass(RetryBudgetExhausted, RetryExhausted)

    def test_no_budget_keeps_plain_attempt_counting(self):
        sim = Simulator()
        policy = RetryPolicy(max_retries=3, base_ms=1.0, jitter=0.0)
        flaky = Flaky(failures=99)
        with pytest.raises(ValueError):
            drive(sim, retry_call(sim, policy, None, flaky, (ValueError,)))
        assert flaky.calls == 4  # initial + 3 retries, no budget raise


class TestWiredCallSites:
    def test_daemon_resends_trip_the_budget(self):
        sim = Simulator()
        daemon = XenStoreDaemon(
            sim, rng=None,
            faults=_injector(FaultPlan.uniform(1.0, "xenstore.message")),
            retry_policy=RetryPolicy(max_retries=50, base_ms=2.0,
                                     multiplier=1.0, cap_ms=2.0,
                                     jitter=0.0, budget_ms=5.0))
        with pytest.raises(RetryBudgetExhausted):
            drive(sim, XsClient(daemon).write("/x", "1"))

    def test_daemon_default_budget_is_off(self):
        sim = Simulator()
        daemon = XenStoreDaemon(
            sim, rng=None,
            faults=_injector(FaultPlan.uniform(1.0, "xenstore.message")))
        assert daemon.retry_policy.budget_ms is None
        with pytest.raises(MessageTimeout):
            drive(sim, XsClient(daemon).write("/x", "1"))

    def test_hotplug_budget_trips_before_attempts_run_out(self):
        sim = Simulator()
        hotplug = BashHotplug(
            sim, faults=_injector(FaultPlan.uniform(1.0, "hotplug.script")),
            retry_policy=RetryPolicy(max_retries=50, base_ms=2.0,
                                     multiplier=1.0, cap_ms=2.0,
                                     jitter=0.0, budget_ms=3.0))
        with pytest.raises(RetryBudgetExhausted):
            drive(sim, hotplug.attach(1, "vif1.0"))

    def test_hotplug_without_budget_raises_hotplug_error(self):
        sim = Simulator()
        hotplug = BashHotplug(
            sim, faults=_injector(FaultPlan.uniform(1.0, "hotplug.script")),
            retry_policy=RetryPolicy(max_retries=2, base_ms=0.5,
                                     jitter=0.0))
        with pytest.raises(HotplugError):
            drive(sim, hotplug.attach(1, "vif1.0"))


def _injector(plan):
    from repro.faults import FaultInjector
    return FaultInjector(plan)
