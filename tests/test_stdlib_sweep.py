"""The sweep runner: worker-count invariance, manifest purity, replay."""

import json

import pytest

from repro.stdlib import (SweepError, bench_payload, preset,
                          replay_manifest, run_sweep, storm_spec)


def _spec():
    # A faulted storm so per-seed digests actually differ.
    return storm_spec("sweep-smoke", "lightvm@1", "daytime@1", 6,
                      faults={"ref": "light@1"})


class TestWorkerInvariance:
    def test_manifest_identical_across_workers_1_2_4(self):
        spec = _spec()
        seeds = list(range(8))
        manifests = [run_sweep(spec, seeds, workers=workers)
                     for workers in (1, 2, 4)]
        reference = manifests[0]
        for manifest in manifests[1:]:
            assert manifest["manifest_digest"] == \
                reference["manifest_digest"]
            assert manifest["runs"] == reference["runs"]
            assert manifest["stats"] == reference["stats"]

    def test_seed_order_does_not_matter(self):
        spec = _spec()
        forward = run_sweep(spec, [0, 1, 2, 3], workers=1)
        backward = run_sweep(spec, [3, 2, 1, 0], workers=2)
        assert forward["manifest_digest"] == backward["manifest_digest"]

    def test_runs_are_seed_sorted(self):
        manifest = run_sweep(_spec(), [5, 1, 3], workers=2)
        assert [run["seed"] for run in manifest["runs"]] == [1, 3, 5]


class TestManifestShape:
    def test_manifest_is_json_serializable(self):
        manifest = run_sweep(_spec(), [0, 1], workers=1)
        json.dumps(manifest)  # must not raise

    def test_manifest_embeds_round_trippable_spec(self):
        from repro.stdlib import ScenarioSpec
        manifest = run_sweep(_spec(), [0], workers=1)
        again = ScenarioSpec.from_dict(manifest["spec"])
        assert again.digest() == manifest["spec_digest"]

    def test_digest_moves_with_the_seed_set(self):
        spec = _spec()
        assert run_sweep(spec, [0, 1])["manifest_digest"] != \
            run_sweep(spec, [0, 2])["manifest_digest"]

    def test_digest_moves_with_the_spec(self):
        seeds = [0, 1]
        other = storm_spec("sweep-smoke", "lightvm@1", "daytime@1", 7,
                           faults={"ref": "light@1"})
        assert run_sweep(_spec(), seeds)["manifest_digest"] != \
            run_sweep(other, seeds)["manifest_digest"]

    def test_latency_stats_take_worst_seed_counters_accumulate(self):
        manifest = run_sweep(_spec(), [0, 1, 2], workers=1)
        runs = manifest["runs"]
        assert manifest["stats"]["booted"] == \
            sum(run["stats"]["booted"] for run in runs)
        assert manifest["stats"]["create_ms_max"] == \
            max(run["stats"]["create_ms_max"] for run in runs)

    def test_cluster_mode_sweeps_too(self):
        manifest = run_sweep(preset("boot-storm", hosts=2, guests=8),
                             [0, 1], workers=2)
        assert manifest["mode"] == "cluster"
        assert manifest["stats"]["booted"] == 16


class TestSweepErrors:
    def test_empty_seed_set_is_an_error(self):
        with pytest.raises(SweepError):
            run_sweep(_spec(), [])

    def test_duplicate_seeds_are_an_error(self):
        with pytest.raises(SweepError) as err:
            run_sweep(_spec(), [1, 1])
        assert "duplicate" in str(err.value)

    def test_inline_failure_propagates_raw(self):
        import dataclasses
        spec = _spec()
        # Poison the guest component so build() raises: inline sweeps
        # surface the original exception.
        poisoned = dataclasses.replace(
            spec, guest=dataclasses.replace(spec.guest, image="gone"))
        with pytest.raises(KeyError):
            run_sweep(poisoned, [0], workers=1)

    def test_parallel_worker_failure_wraps_in_sweep_error(self):
        import dataclasses
        # Workers rebuild the spec from its source payload; a broken
        # payload makes the child die, and the coordinator must turn
        # that into a loud SweepError carrying the child traceback.
        broken = dataclasses.replace(_spec(), source={"mode": "host"})
        with pytest.raises(SweepError) as err:
            run_sweep(broken, [0, 1], workers=2)
        assert "sweep worker failed" in str(err.value)


class TestReplay:
    def test_replay_reproduces_manifest(self):
        manifest = run_sweep(_spec(), [0, 1, 2], workers=1)
        same, again = replay_manifest(manifest, workers=2)
        assert same
        assert again["manifest_digest"] == manifest["manifest_digest"]

    def test_replay_detects_divergence(self):
        manifest = run_sweep(_spec(), [0, 1], workers=1)
        manifest["manifest_digest"] = "0" * 64
        same, _ = replay_manifest(manifest)
        assert not same

    def test_replay_rejects_unknown_version(self):
        manifest = run_sweep(_spec(), [0], workers=1)
        manifest["version"] = 99
        with pytest.raises(SweepError):
            replay_manifest(manifest)


class TestBenchPayload:
    def test_payload_has_bench_schema(self):
        manifest = run_sweep(_spec(), [0, 1], workers=1)
        payload = bench_payload(manifest, wall_s=1.5)
        assert payload["figure"] == "sweep-sweep-smoke"
        assert payload["wall_clock_s"] == 1.5
        assert payload["data"]["seeds"] == 2
        assert len(payload["data"]["run_digests"]) == 2

    def test_payload_loads_through_bench_results(self, tmp_path):
        from repro.analysis import load_results
        from repro.stdlib import write_bench_json
        manifest = run_sweep(_spec(), [0], workers=1)
        out = tmp_path / "BENCH_sweep-sweep-smoke.json"
        write_bench_json(manifest, out, wall_s=0.5)
        results = load_results(tmp_path)
        assert "sweep-sweep-smoke" in results

    def test_committed_baseline_matches_the_example_scenario(self):
        # The CI sweep-smoke contract, pinned in-repo as well: the
        # committed baseline digest is exactly what the committed
        # example produces for seeds 0..7 (worker count irrelevant).
        import pathlib

        from repro.stdlib import load_spec
        root = pathlib.Path(__file__).resolve().parent.parent
        baseline = json.loads(
            (root / "benchmarks" / "baseline_sweep.json").read_text())
        spec = load_spec(root / "examples" / "boot_storm.yaml")
        manifest = run_sweep(spec, baseline["seeds"], workers=1)
        assert manifest["spec_digest"] == baseline["spec_digest"]
        assert manifest["manifest_digest"] == \
            baseline["manifest_digest"]
