"""Tests for repro.faults: deterministic injection, retry, rollback."""

import pytest

from repro.core import Host
from repro.faults import (FaultInjector, FaultPlan, FaultRule,
                          InvariantViolation, MessageTimeout, RetryPolicy,
                          assert_clean)
from repro.hypervisor import DomainState
from repro.guests import DAYTIME_UNIKERNEL
from repro.sim.rng import RngRegistry


def drained(host, ms=500.0):
    """Let async teardowns finish, then return invariant violations."""
    host.sim.run(until=host.sim.now + ms)
    return host.check_invariants()


class TestFaultInjector:
    def test_null_injector_never_fires(self):
        injector = FaultInjector()
        assert not injector.enabled
        assert injector.fires("xenstore.message") is None
        assert injector.metrics() == {}

    def test_once_fires_at_nth_occurrence_only(self):
        plan = FaultPlan.once("hotplug.script", occurrence=3,
                              kind="crash", delay_ms=7.0)
        injector = FaultInjector(plan)
        hits = [injector.fires("hotplug.script") for _ in range(6)]
        assert [h is not None for h in hits] == [False, False, True,
                                                False, False, False]
        assert hits[2].kind == "crash"
        assert hits[2].delay_ms == 7.0

    def test_max_fires_bounds_a_storm(self):
        plan = FaultPlan(rules=(FaultRule(point="xenstore.commit",
                                          probability=1.0, max_fires=3),))
        injector = FaultInjector(plan)
        fired = sum(injector.fires("xenstore.commit") is not None
                    for _ in range(10))
        assert fired == 3
        assert injector.metrics()["xenstore.commit"] == {
            "occurrences": 10, "injected": 3}

    def test_pattern_scopes_rules_to_matching_points(self):
        plan = FaultPlan.uniform(1.0, points="xenstore.*")
        injector = FaultInjector(plan)
        assert injector.fires("xenstore.message") is not None
        assert injector.fires("hotplug.script") is None

    def test_same_seed_same_schedule(self):
        plan = FaultPlan.uniform(0.3, seed=11)
        schedules = []
        for _ in range(2):
            injector = FaultInjector(plan)
            schedules.append([injector.fires("p") is not None
                              for _ in range(200)])
        assert schedules[0] == schedules[1]
        assert any(schedules[0]) and not all(schedules[0])

    def test_per_point_streams_are_isolated(self):
        """Interleaving draws for point b never perturbs point a."""
        plan = FaultPlan.uniform(0.3, seed=11)
        alone = FaultInjector(plan)
        pattern_alone = [alone.fires("a") is not None for _ in range(100)]
        mixed = FaultInjector(plan)
        pattern_mixed = []
        for _ in range(100):
            pattern_mixed.append(mixed.fires("a") is not None)
            mixed.fires("b")
        assert pattern_alone == pattern_mixed


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_cap(self):
        policy = RetryPolicy(base_ms=1.0, multiplier=2.0, cap_ms=8.0,
                             jitter=0.0)
        assert [policy.backoff_ms(r) for r in (1, 2, 3, 4, 5, 6)] == \
            [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_ms=4.0, jitter=0.25)
        stream = RngRegistry(3).stream("j")
        first = [policy.backoff_ms(1, stream) for _ in range(20)]
        stream = RngRegistry(3).stream("j")
        again = [policy.backoff_ms(1, stream) for _ in range(20)]
        assert first == again
        assert all(3.0 <= d <= 5.0 for d in first)
        assert len(set(first)) > 1

    def test_gives_up_past_max_retries(self):
        policy = RetryPolicy(max_retries=3)
        assert not policy.give_up(3, 0.0, 10.0)
        assert policy.give_up(4, 0.0, 10.0)

    def test_deadline_overrides_remaining_retries(self):
        policy = RetryPolicy(max_retries=100, deadline_ms=50.0)
        assert not policy.give_up(1, 0.0, 49.0)
        assert policy.give_up(1, 0.0, 51.0)


class TestXenStoreFaults:
    def test_lost_message_is_retried_transparently(self):
        host = Host(variant="xl",
                    fault_plan=FaultPlan.once("xenstore.message"))
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.xenstore.stats["timeouts"] == 1
        assert drained(host) == []

    def test_message_exhaustion_fails_loudly_then_recovers(self):
        plan = FaultPlan(rules=(FaultRule(point="xenstore.message",
                                          probability=1.0, max_fires=8),))
        host = Host(variant="xl", fault_plan=plan)
        with pytest.raises(MessageTimeout):
            host.create_vm(DAYTIME_UNIKERNEL)
        assert host.xenstore.stats["timeouts"] == 8
        assert drained(host) == []
        # The fault window has passed; the host is fully usable again.
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING

    def test_conflict_storm_rides_the_retry_loop(self):
        plan = FaultPlan(rules=(FaultRule(point="xenstore.commit",
                                          probability=1.0, max_fires=3),))
        host = Host(variant="xl", fault_plan=plan)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.xenstore.stats["conflicts"] >= 3
        assert record.xenstore_retries >= 3
        assert drained(host) == []

    def test_dropped_watches_force_reannounce(self):
        plan = FaultPlan(rules=(FaultRule(point="xenstore.watch",
                                          probability=1.0, max_fires=2),))
        host = Host(variant="xl", fault_plan=plan)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.xenstore.stats["watch_drops"] == 2
        assert drained(host) == []


class TestHotplugFaults:
    def test_failed_script_is_relaunched(self):
        host = Host(variant="xl", fault_plan=FaultPlan.once(
            "hotplug.script", kind="exit-1"))
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.toolstack.hotplug.failures == 1
        assert host.toolstack.hotplug.invocations >= 2
        assert drained(host) == []

    def test_script_exhaustion_rolls_the_creation_back(self):
        plan = FaultPlan(rules=(FaultRule(point="hotplug.script",
                                          probability=1.0, max_fires=9),))
        host = Host(variant="xl", fault_plan=plan)
        with pytest.raises(Exception):
            host.create_vm(DAYTIME_UNIKERNEL)
        assert host.toolstack.rollbacks == 1
        assert host.running_guests == 0
        assert drained(host) == []
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING

    def test_xendevd_survives_a_failure_too(self):
        host = Host(variant="chaos+xs", fault_plan=FaultPlan.once(
            "hotplug.xendevd"))
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.toolstack.hotplug.failures == 1
        assert drained(host) == []


class TestShellPoolFaults:
    def test_crashed_shell_is_torn_down_and_replenished(self):
        host = Host(variant="lightvm", pool_target=4,
                    fault_plan=FaultPlan.once("shellpool.shell",
                                              kind="crash"))
        host.warmup(2000)
        assert host.daemon.shells_crashed == 1
        assert len(host.daemon.pool) == 4  # replenished past the crash
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert drained(host) == []


class TestHypervisorFaults:
    def test_transient_hypercall_is_retried(self):
        host = Host(variant="xl", fault_plan=FaultPlan.once(
            "hypervisor.hypercall"))
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.fault_metrics()["hypervisor.hypercall"]["injected"] == 1
        assert drained(host) == []

    @pytest.mark.parametrize("variant", ["xl", "lightvm"])
    def test_grant_map_failure_is_retried(self, variant):
        host = Host(variant=variant, pool_target=4, fault_plan=FaultPlan.once(
            "hypervisor.grant_map"))
        host.warmup(2000)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert host.fault_metrics()["hypervisor.grant_map"]["injected"] == 1
        assert drained(host) == []


class TestDeterministicTimelines:
    @pytest.mark.parametrize("variant", ["xl", "chaos+xs", "lightvm"])
    def test_same_seed_and_plan_bitwise_identical(self, variant):
        """ISSUE acceptance: same (seed, FaultPlan) => same timeline."""
        timelines = []
        for _run in range(2):
            host = Host(variant=variant, seed=13, pool_target=8,
                        fault_plan=FaultPlan.uniform(0.05, seed=13))
            host.warmup(2000)
            creates = []
            for _ in range(8):
                try:
                    creates.append(host.create_vm(
                        DAYTIME_UNIKERNEL).create_ms)
                except Exception as exc:
                    creates.append(type(exc).__name__)
            timelines.append((creates, host.sim.now,
                              host.fault_metrics()))
        assert timelines[0] == timelines[1]

    def test_no_plan_means_no_timing_perturbation(self):
        """A None plan and an empty plan are byte-for-byte the same."""
        times = []
        for plan in (None, FaultPlan()):
            host = Host(variant="xl", seed=4, fault_plan=plan)
            times.append([host.create_vm(DAYTIME_UNIKERNEL).create_ms
                          for _ in range(3)])
        assert times[0] == times[1]


class TestInvariantChecker:
    def test_clean_host_has_no_violations(self):
        host = Host(variant="xl")
        host.create_vm(DAYTIME_UNIKERNEL)
        assert drained(host) == []
        assert_clean(host)  # does not raise

    def test_orphaned_xenstore_subtree_is_reported(self):
        host = Host(variant="xl")
        proc = host.sim.process(host.xenstore.write(
            0, "/local/domain/99/name", "ghost"))
        host.sim.run(until=proc)
        violations = host.check_invariants()
        assert violations and "99" in "".join(violations)
        with pytest.raises(InvariantViolation):
            assert_clean(host)

    def test_leaked_grant_is_reported(self):
        host = Host(variant="lightvm", pool_target=2)
        host.warmup(1000)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        domid = record.domain.domid
        host.destroy_vm(record.domain)
        host.sim.run(until=host.sim.now + 500.0)
        host.hypervisor.grants._entries[(domid, 0xdead)] = object()
        assert host.check_invariants()
