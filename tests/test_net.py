"""Tests for the network substrate: links, bridge, flows, TLS."""

import pytest

from repro.net import Link
from repro.net.flows import (ForwardingCosts, forwarding_capacity_mbps,
                             run_forwarding_fleet)
from repro.net.switch import SoftwareBridge
from repro.net.tls import tls_throughput
from repro.sim import RngStream, Simulator


class TestLink:
    def test_transfer_time_includes_latency_and_serialization(self):
        sim = Simulator()
        link = Link(sim, latency_ms=10.0, bandwidth_mbps=1000.0)
        # 1 MiB over 1 Gb/s = 8.39 ms serialization + 10 ms latency.
        assert link.transfer_ms(1024) == pytest.approx(18.4, abs=0.2)

    def test_transfer_advances_clock_and_accounts(self):
        sim = Simulator()
        link = Link(sim, latency_ms=1.0, bandwidth_mbps=100.0)
        proc = sim.process(link.transfer(100))
        sim.run(until=proc)
        assert sim.now > 1.0
        assert link.bytes_transferred == 100 * 1024

    def test_round_trip(self):
        sim = Simulator()
        link = Link(sim, latency_ms=5.0)
        proc = sim.process(link.round_trip())
        sim.run(until=proc)
        assert sim.now == pytest.approx(10.0)


class TestBridge:
    def _bridge(self, capacity=1.0):
        sim = Simulator()
        return sim, SoftwareBridge(sim, RngStream(0, "bridge"),
                                   capacity_events_per_ms=capacity)

    def test_attach_detach_ports(self):
        _sim, bridge = self._bridge()
        bridge.attach(5, "vif5.0")
        assert bridge.ports["vif5.0"] == 5
        bridge.detach(5, "vif5.0")
        assert "vif5.0" not in bridge.ports

    def test_arp_succeeds_under_capacity(self):
        sim, bridge = self._bridge(capacity=10.0)
        for _ in range(20):
            assert bridge.arp_resolve()
            sim.timeout(10.0)
            sim.run()
        assert bridge.drops == 0

    def test_arp_drops_when_overloaded(self):
        sim, bridge = self._bridge(capacity=0.01)
        outcomes = []
        for _ in range(200):
            outcomes.append(bridge.arp_resolve())
            sim.timeout(1.0)
            sim.run()
        assert bridge.drops > 0
        assert not all(outcomes)

    def test_load_window_slides(self):
        sim, bridge = self._bridge()
        bridge.arp_resolve()
        assert bridge.load() > 0
        sim.timeout(bridge.window_ms * 2)
        sim.run()
        bridge.arp_resolve()
        # Old events aged out; load reflects only the recent one.
        assert bridge.load() == pytest.approx(1 / bridge.window_ms)


class TestForwarding:
    def test_linear_region_no_loss(self):
        result = run_forwarding_fleet(100, guest_cores=13)
        assert result.per_client_mbps == pytest.approx(10.0)
        assert not result.saturated

    def test_paper_saturation_points(self):
        """Fig 16a: ~2.5 Gb/s linear limit; 6.5 Mb/s @500; 4 Mb/s @1000."""
        r250 = run_forwarding_fleet(250, guest_cores=13)
        assert r250.total_gbps == pytest.approx(2.5, abs=0.3)
        r500 = run_forwarding_fleet(500, guest_cores=13)
        assert r500.per_client_mbps == pytest.approx(6.5, abs=1.0)
        r1000 = run_forwarding_fleet(1000, guest_cores=13)
        assert r1000.per_client_mbps == pytest.approx(4.0, abs=0.7)

    def test_rtt_rises_to_60ms_at_1000(self):
        result = run_forwarding_fleet(1000, guest_cores=13)
        assert result.rtt_ms == pytest.approx(60.0, abs=10.0)

    def test_rtt_negligible_at_low_load(self):
        result = run_forwarding_fleet(10, guest_cores=13)
        assert result.rtt_ms < 1.0

    def test_capacity_monotone_in_cores(self):
        costs = ForwardingCosts()
        assert forwarding_capacity_mbps(100, 26, costs) > \
            forwarding_capacity_mbps(100, 13, costs)

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            run_forwarding_fleet(0, guest_cores=13)


class TestTls:
    def test_paper_saturation_rates(self):
        """Fig 16c: ~1400 req/s for Tinyx/bare-metal; unikernel ≈ 1/5."""
        tinyx = tls_throughput("tinyx", 1000, cores=13)
        bare = tls_throughput("bare-metal", 1000, cores=13)
        uni = tls_throughput("unikernel", 1000, cores=13)
        assert bare.requests_per_s == pytest.approx(1400, rel=0.15)
        assert tinyx.requests_per_s == pytest.approx(
            bare.requests_per_s, rel=0.05)
        assert uni.requests_per_s == pytest.approx(
            tinyx.requests_per_s / 5, rel=0.1)

    def test_throughput_grows_until_cores_saturate(self):
        small = tls_throughput("tinyx", 2, cores=13)
        big = tls_throughput("tinyx", 13, cores=13)
        assert big.requests_per_s > small.requests_per_s
        more = tls_throughput("tinyx", 100, cores=13)
        assert more.requests_per_s == pytest.approx(big.requests_per_s)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            tls_throughput("windows", 1, cores=4)

    def test_zero_instances_rejected(self):
        with pytest.raises(ValueError):
            tls_throughput("tinyx", 0, cores=4)


class TestTlsDiscreteCrossCheck:
    """The discrete-event fleet must agree with the analytic model."""

    def test_agreement_below_saturation(self):
        from repro.net.tls import simulate_tls_fleet, tls_throughput
        measured = simulate_tls_fleet("tinyx", 4, cores=13)
        analytic = tls_throughput("tinyx", 4, cores=13).requests_per_s
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_agreement_at_saturation(self):
        from repro.net.tls import simulate_tls_fleet, tls_throughput
        measured = simulate_tls_fleet("tinyx", 40, cores=13)
        analytic = tls_throughput("tinyx", 40, cores=13).requests_per_s
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_agreement_for_unikernel(self):
        from repro.net.tls import simulate_tls_fleet, tls_throughput
        measured = simulate_tls_fleet("unikernel", 30, cores=13)
        analytic = tls_throughput("unikernel", 30,
                                  cores=13).requests_per_s
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_validation(self):
        from repro.net.tls import simulate_tls_fleet
        with pytest.raises(ValueError):
            simulate_tls_fleet("windows", 1, cores=2)
        with pytest.raises(ValueError):
            simulate_tls_fleet("tinyx", 0, cores=2)
