"""Tests for the Docker engine model and the process baseline."""

import pytest

from repro.containers import (DockerCosts, DockerEngine, DockerOOMError,
                              ProcessSpawner)
from repro.sim import RngStream, Simulator


def run(sim, gen):
    def wrapper():
        result = yield from gen
        return result
    return sim.run(until=sim.process(wrapper()))


def make_engine(memory_mb=128 * 1024, **cost_kwargs):
    sim = Simulator()
    costs = DockerCosts(**cost_kwargs) if cost_kwargs else None
    engine = DockerEngine(sim, RngStream(0, "docker"), memory_mb,
                          costs=costs)
    return sim, engine


class TestDocker:
    def test_start_takes_roughly_150ms(self):
        sim, engine = make_engine()
        run(sim, engine.start_container())
        assert 100 <= sim.now <= 250

    def test_start_latency_ramps_with_count(self):
        sim, engine = make_engine()
        first = None
        for i in range(400):
            before = sim.now
            run(sim, engine.start_container())
            if i == 0:
                first = sim.now - before
        last = sim.now - before
        assert last > first

    def test_memory_grows_linearly(self):
        sim, engine = make_engine()
        base = engine.memory_usage_mb()
        for _ in range(100):
            run(sim, engine.start_container())
        grown = engine.memory_usage_mb() - base
        assert grown == pytest.approx(100 * engine.costs.per_container_mb,
                                      rel=0.3)

    def test_arena_spike_at_period(self):
        sim, engine = make_engine()
        durations = []
        for _ in range(501):
            before = sim.now
            run(sim, engine.start_container())
            durations.append(sim.now - before)
        # The 501st start (index 500) crosses the arena period.
        assert durations[500] > max(durations[:499]) + 10

    def test_oom_kills_engine(self):
        # Tiny host: the engine dies quickly and stays dead.
        sim, engine = make_engine(memory_mb=1200, arena_initial_mb=512.0,
                                  arena_period=10)
        with pytest.raises(DockerOOMError):
            for _ in range(200):
                run(sim, engine.start_container())
        assert engine.dead
        with pytest.raises(DockerOOMError):
            run(sim, engine.start_container())

    def test_stop_removes_container(self):
        sim, engine = make_engine()
        container = run(sim, engine.start_container())
        assert engine.running == 1
        run(sim, engine.stop_container(container))
        assert engine.running == 0

    def test_pause_unpause(self):
        sim, engine = make_engine()
        container = run(sim, engine.start_container())
        run(sim, engine.pause(container))
        assert container.paused
        run(sim, engine.unpause(container))
        assert not container.paused

    def test_thousand_containers_use_few_gb(self):
        """Fig 14: ~5 GB for 1000 Docker/Micropython containers."""
        sim, engine = make_engine()
        for _ in range(1000):
            run(sim, engine.start_container())
        usage_gb = engine.memory_usage_mb() / 1024.0
        assert 3.0 <= usage_gb <= 8.0


class TestProcesses:
    def test_forkexec_latency_distribution(self):
        """Fig 4: ~3.5 ms average, ~9 ms at the 90th percentile."""
        sim = Simulator()
        spawner = ProcessSpawner(sim, RngStream(1, "proc"))
        latencies = []
        for _ in range(2000):
            before = sim.now
            run(sim, spawner.spawn())
            latencies.append(sim.now - before)
        latencies.sort()
        mean = sum(latencies) / len(latencies)
        p90 = latencies[int(len(latencies) * 0.9)]
        assert mean == pytest.approx(3.5, abs=1.5)
        assert p90 == pytest.approx(9.0, abs=3.5)

    def test_latency_independent_of_count(self):
        sim = Simulator()
        spawner = ProcessSpawner(sim, RngStream(2, "proc"))
        for _ in range(500):
            run(sim, spawner.spawn())
        # Median of another 200 is still in the same range.
        latencies = []
        for _ in range(200):
            before = sim.now
            run(sim, spawner.spawn())
            latencies.append(sim.now - before)
        latencies.sort()
        assert latencies[100] == pytest.approx(3.0, abs=1.5)

    def test_fork_is_about_1ms(self):
        sim = Simulator()
        spawner = ProcessSpawner(sim, RngStream(3, "proc"))
        run(sim, spawner.fork())
        assert sim.now == pytest.approx(1.0, abs=0.2)

    def test_memory_lowest_of_all(self):
        sim = Simulator()
        spawner = ProcessSpawner(sim, RngStream(4, "proc"))
        for _ in range(1000):
            run(sim, spawner.spawn())
        assert spawner.memory_usage_mb() < 2000  # far below Docker's ~5 GB

    def test_kill(self):
        sim = Simulator()
        spawner = ProcessSpawner(sim, RngStream(5, "proc"))
        process = run(sim, spawner.spawn())
        spawner.kill(process)
        assert spawner.running == 0
