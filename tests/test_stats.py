"""Tests for the host stats snapshot."""

import pytest

from repro.core import Host, snapshot
from repro.guests import DAYTIME_UNIKERNEL


class TestSnapshot:
    def test_idle_host(self):
        host = Host(variant="chaos+noxs")
        stats = snapshot(host)
        assert stats.domains_by_state == {}
        assert stats.guest_memory_mb == 0.0
        assert stats.cpu_utilization_pct == 0.0
        assert stats.xenstore_ops == 0

    def test_counts_running_guests(self):
        host = Host(variant="chaos+noxs")
        for _ in range(3):
            host.create_vm(DAYTIME_UNIKERNEL)
        stats = snapshot(host)
        assert stats.domains_by_state["running"] == 3
        assert stats.guest_memory_mb == pytest.approx(
            3 * DAYTIME_UNIKERNEL.memory_kb / 1024.0, rel=0.01)
        assert stats.noxs_devices_created >= 3

    def test_shells_reported_separately(self):
        host = Host(variant="lightvm", pool_target=4)
        host.warmup(1000)
        stats = snapshot(host)
        assert stats.domains_by_state.get("shell") == 4
        assert stats.guest_memory_mb == 0.0  # shells excluded

    def test_xenstore_counters(self):
        host = Host(variant="xl")
        host.create_vm(DAYTIME_UNIKERNEL)
        stats = snapshot(host)
        assert stats.xenstore_ops > 0
        assert stats.xenstore_nodes > 0
        assert stats.xenstore_watches > 0
        assert stats.hypercalls.get("domctl_create") == 1

    def test_render_is_readable(self):
        host = Host(variant="xl")
        host.create_vm(DAYTIME_UNIKERNEL)
        text = snapshot(host).render()
        assert "domains:" in text
        assert "xenstore:" in text
        assert "running=1" in text

    def test_cli_stats_flag(self, capsys):
        from repro.cli import main
        assert main(["create", "--count", "2", "--variant", "chaos+noxs",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "noxs:" in out
        assert "domains:" in out
