"""Tests for VM creation across the five toolstack variants."""

import pytest

from repro.core import Host, VARIANTS
from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL
from repro.hypervisor import DomainState


@pytest.fixture(params=VARIANTS)
def host(request):
    h = Host(variant=request.param)
    h.warmup(500)
    return h


class TestCreateAcrossVariants:
    def test_create_boots_a_running_domain(self, host):
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.state == DomainState.RUNNING
        assert record.create_ms > 0
        assert record.boot_ms > 0

    def test_phase_breakdown_sums_to_create(self, host):
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert sum(record.phases.values()) == pytest.approx(
            record.create_ms, rel=0.01)

    def test_create_without_boot_leaves_created(self, host):
        record = host.create_vm(DAYTIME_UNIKERNEL, boot=False)
        assert record.domain.state in (DomainState.CREATED,)
        assert record.boot_ms == 0.0

    def test_destroy_releases_domain(self, host):
        record = host.create_vm(DAYTIME_UNIKERNEL)
        count_before = host.running_guests
        host.destroy_vm(record.domain)
        assert host.running_guests == count_before - 1

    def test_memory_reserved_matches_image(self, host):
        record = host.create_vm(DAYTIME_UNIKERNEL)
        owned = host.hypervisor.memory.owned_kb(record.domain.domid)
        assert owned == DAYTIME_UNIKERNEL.memory_kb


class TestVariantOrdering:
    """The paper's headline comparisons between the configurations."""

    @staticmethod
    def _first_create(variant, image=DAYTIME_UNIKERNEL):
        host = Host(variant=variant)
        host.warmup(500)
        record = host.create_vm(image)
        return record

    def test_chaos_much_faster_than_xl(self):
        xl = self._first_create("xl")
        chaos = self._first_create("chaos+xs")
        assert chaos.create_ms < xl.create_ms / 4

    def test_split_faster_than_unsplit(self):
        unsplit = self._first_create("chaos+xs")
        split = self._first_create("chaos+xs+split")
        assert split.create_ms < unsplit.create_ms

    def test_lightvm_fastest(self):
        lightvm = self._first_create("lightvm")
        for other in ("xl", "chaos+xs", "chaos+xs+split", "chaos+noxs"):
            assert lightvm.create_ms <= self._first_create(other).create_ms

    def test_noop_unikernel_near_paper_floor(self):
        """§6.1: noop + all optimizations boots in about 2.3 ms."""
        record = self._first_create("lightvm", image=NOOP_UNIKERNEL)
        assert record.total_ms == pytest.approx(2.3, abs=0.5)

    def test_lightvm_daytime_near_4ms(self):
        record = self._first_create("lightvm")
        assert record.total_ms == pytest.approx(4.4, abs=1.0)

    def test_xl_first_creation_near_100ms(self):
        record = self._first_create("xl")
        assert 60 <= record.create_ms <= 140


class TestScalingBehaviour:
    def test_xl_creation_grows_with_running_guests(self):
        host = Host(variant="xl")
        first = host.create_vm(DAYTIME_UNIKERNEL)
        for _ in range(120):
            host.create_vm(DAYTIME_UNIKERNEL)
        late = host.create_vm(DAYTIME_UNIKERNEL)
        assert late.create_ms > first.create_ms * 1.2

    def test_lightvm_creation_flat(self):
        host = Host(variant="lightvm", pool_target=200)
        host.warmup(3000)
        first = host.create_vm(DAYTIME_UNIKERNEL)
        for _ in range(120):
            host.create_vm(DAYTIME_UNIKERNEL)
        late = host.create_vm(DAYTIME_UNIKERNEL)
        assert late.create_ms == pytest.approx(first.create_ms, rel=0.25)

    def test_noxs_needs_no_xenstore(self):
        host = Host(variant="lightvm")
        assert host.xenstore is None
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.xenstore_retries == 0
        assert record.phases["xenstore"] == 0.0

    def test_xl_device_page_absent(self):
        host = Host(variant="xl")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.device_page is None

    def test_lightvm_device_page_present(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.domain.device_page is not None
        assert record.domain.device_page.count >= 1  # vif (+ sysctl)


class TestHostValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            Host(variant="kvm")

    def test_names_unique(self):
        host = Host(variant="xl")
        r1 = host.create_vm(DAYTIME_UNIKERNEL)
        r2 = host.create_vm(DAYTIME_UNIKERNEL)
        assert r1.config_name != r2.config_name
