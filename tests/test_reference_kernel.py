"""Dual-kernel determinism proofs for the fast-path DES kernel.

Every figure-style workload here runs twice — once on the optimized
kernel (``repro.sim``) and once on the frozen naive reference kernel
(``tests/reference_kernel.py``, the pre-optimization seed semantics) —
and the :class:`~repro.analysis.sanitize.EventTrace` digests must be
byte-identical.  The digest hashes ``(time, type name, ok, payload)``
for every event popped from the heap, so identity proves the
optimizations (slots, pooled timeouts, closure-free scheduling, batched
draining, incremental ``AllOf``) changed *host* cost only: same events,
same order, same times, same values.
"""

import pytest

from repro.analysis.sanitize import EventTrace
from repro.containers import DockerEngine, ProcessSpawner
from repro.core import Host
from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL
from repro.sim import RngStream, Simulator

from tests.reference_kernel import AllOf as RefAllOf
from tests.reference_kernel import Simulator as RefSimulator

SEEDS = (0, 7, 42)


def run_traced(sim_cls, scenario, seed):
    """Run ``scenario(sim, seed)`` on a fresh kernel; return its trace."""
    sim = sim_cls()
    trace = EventTrace().attach(sim)
    scenario(sim, seed)
    return trace


def assert_kernels_agree(scenario, seed):
    optimized = run_traced(Simulator, scenario, seed)
    reference = run_traced(RefSimulator, scenario, seed)
    assert optimized.events == reference.events
    assert optimized.events > 0
    assert optimized.digest() == reference.digest()


# ----------------------------------------------------------------------
# Figure-style workloads (scaled-down slices of the benchmark scripts)
# ----------------------------------------------------------------------

def fig04_slice(sim, seed):
    """Fig 4 slice: xl VM storm + container storm + process storm."""
    host = Host(variant="xl", seed=seed, sim=sim)
    for _ in range(8):
        host.create_vm(DAYTIME_UNIKERNEL)
    engine = DockerEngine(sim, RngStream(seed, "docker"), 128 * 1024)
    spawner = ProcessSpawner(sim, RngStream(seed, "proc"))
    for _ in range(6):
        for op in (engine.start_container, spawner.spawn):
            def drive(op=op):
                yield from op()
            sim.run(until=sim.process(drive()))


def fig09_slice(sim, seed):
    """Fig 9 slice: creation across toolstack variants on one timeline."""
    for variant in ("xl", "chaos+xs", "lightvm"):
        host = Host(variant=variant, seed=seed, sim=sim,
                    pool_target=12,
                    shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
        if variant == "lightvm":
            host.warmup(20.0 * 12)
        for _ in range(6):
            host.create_vm(DAYTIME_UNIKERNEL)


def fig10_slice(sim, seed):
    """Fig 10 slice: lightvm density ramp with pooled noop shells."""
    host = Host(variant="lightvm", seed=seed, sim=sim,
                pool_target=40,
                shell_memory_kb=NOOP_UNIKERNEL.memory_kb)
    host.warmup(12.0 * 40)
    for _ in range(32):
        host.create_vm(NOOP_UNIKERNEL)


SCENARIOS = {
    "fig04": fig04_slice,
    "fig09": fig09_slice,
    "fig10": fig10_slice,
}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_digest_identical_optimized_vs_naive(name, seed):
    assert_kernels_agree(SCENARIOS[name], seed)


# ----------------------------------------------------------------------
# Kernel-primitive workloads (exercise every optimized fast path)
# ----------------------------------------------------------------------

def kernel_primitives(sim, seed):
    """Same-instant batches, pooled call_later, schedule, conditions."""
    fired = []

    def note(tag):
        fired.append(tag)

    # call_later (pooled fast path) at coinciding instants, out of order.
    for index in range(50):
        sim.call_later(float((index * seed + 3) % 7), note, index)
    # schedule() with arguments.
    for index in range(10):
        sim.schedule(2.5, note, "s%d" % index)

    # Processes waiting on AllOf / AnyOf fan-outs and timeouts.
    def waiter():
        events = [sim.timeout(float(i % 4), value=i) for i in range(12)]
        payload = yield sim.all_of(events)
        assert list(payload.values()) == list(range(12))
        first = yield sim.any_of([sim.timeout(1.0, value="a"),
                                  sim.timeout(2.0, value="b")])
        assert "a" in first.values()
        return len(fired)

    done = sim.process(waiter())
    sim.run(until=done)
    sim.run()


@pytest.mark.parametrize("seed", SEEDS)
def test_digest_identical_kernel_primitives(seed):
    assert_kernels_agree(kernel_primitives, seed)


# ----------------------------------------------------------------------
# AllOf regression: incremental collection, not an O(N) re-walk
# ----------------------------------------------------------------------

class TestAllOfIncremental:
    def test_success_path_never_calls_collect(self):
        """The optimized AllOf accumulates values as children trigger;
        a success must not re-walk the child list via _collect() (the
        seed's O(N) walk, quadratic across a fan-out of fan-outs)."""
        from repro.sim.events import AllOf

        class NoCollectAllOf(AllOf):
            def _collect(self):
                pytest.fail("AllOf.succeed re-walked the child list")

        sim = Simulator()
        condition = NoCollectAllOf(
            sim, [sim.timeout(float(i), value=i) for i in range(64)])
        sim.run()
        assert condition.ok
        assert list(condition.value.values()) == list(range(64))

    def test_payload_identical_to_reference(self):
        """Same fan-out on both kernels: payload values in child order,
        keyed by the condition's own events."""
        payloads = []
        for sim_cls in (Simulator, RefSimulator):
            sim = sim_cls()
            events = [sim.timeout(float(i % 5), value="v%d" % i)
                      for i in range(20)]
            condition = sim.all_of(events)
            sim.run()
            assert list(condition.value.keys()) == events
            payloads.append(list(condition.value.values()))
        assert payloads[0] == payloads[1]

    def test_failure_still_fails_fast(self):
        sim = Simulator()
        boom = sim.event()
        condition = sim.all_of([sim.timeout(5.0), boom])
        boom.fail(RuntimeError("child failed"))
        condition.defused = True
        sim.run()
        assert not condition.ok
        assert isinstance(condition.value, RuntimeError)

    def test_reference_allof_is_the_rewalk(self):
        """Guard the measuring stick: the reference kernel must keep the
        seed's collect-at-success semantics."""
        sim = RefSimulator()
        events = [sim.timeout(0.0, value=i) for i in range(4)]
        condition = sim.all_of(events)
        assert isinstance(condition, RefAllOf)
        calls = []
        original = condition._collect
        condition._collect = lambda: calls.append(1) or original()
        sim.run()
        assert condition.ok
        assert calls  # the naive kernel re-walks; the optimized one must not
