"""Tests for the observability layer (``repro.trace``).

Covers the four contracts the layer makes:

* zero cost when disabled — call sites reach the shared null tracer and
  allocate nothing;
* correct span structure — sim-time stamps, per-process parenting,
  attributes, error capture;
* exact agreement with the benchmarks — per-phase attribution derived
  from spans equals the PhaseRecorder series bit for bit (Fig 5);
* replay determinism — attaching a tracer never perturbs the event
  timeline (EventTrace digests are byte-identical tracing on or off) and
  the tracer's own digest is replay-stable.
"""

import json

import pytest

from repro.analysis import EventTrace
from repro.core import Host
from repro.core.stats import snapshot
from repro.guests import lookup
from repro.sim import Simulator
from repro.toolstack import PHASES
from repro.trace import (NULL_TRACER, MetricsRegistry, Tracer,
                         collect_host_metrics, phase_attribution,
                         render_attribution, render_span_summary,
                         span_summary, trace_events, tracer_of,
                         write_chrome_trace)

DAYTIME = lookup("daytime")


# ---------------------------------------------------------------------------
# Null tracer (the disabled path)
# ---------------------------------------------------------------------------
class TestNullTracer:
    def test_tracer_of_none_is_null(self):
        assert tracer_of(None) is NULL_TRACER

    def test_fresh_simulator_has_no_tracer(self):
        assert tracer_of(Simulator()) is NULL_TRACER

    def test_attach_makes_tracer_reachable(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        assert tracer_of(sim) is tracer

    def test_disabled_span_is_shared_and_inert(self):
        # Zero allocation on the hot path: every call returns the same
        # object, and the full with/set protocol is a no-op.
        first = NULL_TRACER.span("a", x=1)
        second = NULL_TRACER.span("b")
        assert first is second
        with NULL_TRACER.span("op") as span:
            span.set(domid=3).set(more=True)
        assert NULL_TRACER.instant("evt", n=2) is None
        assert not NULL_TRACER.enabled


# ---------------------------------------------------------------------------
# Span recording
# ---------------------------------------------------------------------------
class TestSpans:
    def test_span_records_sim_time_interval(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)

        def proc():
            yield sim.timeout(3.0)
            with tracer.span("work"):
                yield sim.timeout(7.5)

        sim.process(proc())
        sim.run()
        (span,) = tracer.by_name("work")
        assert span.begin_ms == 3.0
        assert span.end_ms == 10.5
        assert span.duration_ms == 7.5

    def test_nested_spans_parent_within_a_process(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)

        def proc():
            with tracer.span("outer"):
                yield sim.timeout(1.0)
                with tracer.span("inner"):
                    yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        (outer,) = tracer.by_name("outer")
        (inner,) = tracer.by_name("inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        # Completion order: children land before their parents.
        assert tracer.spans.index(inner) < tracer.spans.index(outer)

    def test_interleaved_processes_do_not_cross_parent(self):
        """Two coroutines with overlapping open spans must keep separate
        stacks — a span opened by B while A's span is open is NOT A's
        child."""
        sim = Simulator()
        tracer = Tracer().attach(sim)

        def worker(start_delay):
            yield sim.timeout(start_delay)
            with tracer.span("outer", who=start_delay):
                yield sim.timeout(10.0)
                with tracer.span("inner", who=start_delay):
                    yield sim.timeout(10.0)

        sim.process(worker(0.0))
        sim.process(worker(1.0))  # overlaps the first entirely
        sim.run()
        outers = {s.attrs["who"]: s for s in tracer.by_name("outer")}
        inners = {s.attrs["who"]: s for s in tracer.by_name("inner")}
        for who in (0.0, 1.0):
            assert inners[who].parent_id == outers[who].span_id
            assert outers[who].parent_id == 0

    def test_each_process_gets_its_own_track(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)

        def named():
            with tracer.span("x"):
                yield sim.timeout(1.0)

        sim.process(named())
        sim.process(named())
        tracer.instant("from-main")
        sim.run()
        tracks = {s.track for s in tracer.spans}
        assert len(tracks) == 3
        assert "main" in tracer.track_names

    def test_exception_is_recorded_and_span_closed(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        with pytest.raises(ValueError):
            with tracer.span("op", domid=7):
                raise ValueError("boom")
        (span,) = tracer.by_name("op")
        assert span.attrs["error"] == "ValueError"
        assert span.attrs["domid"] == 7
        assert tracer.open_spans() == []

    def test_set_is_chainable_and_merges(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        with tracer.span("op", a=1) as span:
            span.set(b=2).set(a=3)
        assert tracer.spans[-1].attrs == {"a": 3, "b": 2}

    def test_instant_has_zero_duration(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        span = tracer.instant("tick", n=1)
        assert span.duration_ms == 0.0
        assert span in tracer.spans

    def test_open_spans_visible_until_closed(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        span = tracer.span("long")
        tracer._begin(span)
        assert tracer.open_spans() == [span]
        assert span.duration_ms == 0.0  # still open
        tracer._end(span)
        assert tracer.open_spans() == []

    def test_digest_is_content_sensitive(self):
        def run(extra):
            sim = Simulator()
            tracer = Tracer().attach(sim)
            with tracer.span("op", n=extra):
                pass
            return tracer.digest()

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_finished_spans_feed_the_metrics_registry(self):
        sim = Simulator()
        registry = MetricsRegistry(sim=sim)
        tracer = Tracer(metrics=registry).attach(sim)

        def proc():
            with tracer.span("op"):
                yield sim.timeout(4.0)

        sim.process(proc())
        sim.run()
        histogram = registry.get("span/op")
        assert histogram is not None
        assert histogram.count == 1
        assert histogram.mean() == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_time_weighted_mean(self):
        sim = Simulator()
        registry = MetricsRegistry(sim=sim)
        gauge = registry.gauge("g")

        def proc():
            gauge.set(1.0)
            yield sim.timeout(10.0)
            gauge.set(3.0)
            yield sim.timeout(10.0)
            gauge.set(0.0)

        sim.process(proc())
        sim.run()
        assert gauge.value == 0.0
        assert gauge.time_weighted_mean(0.0) == pytest.approx(2.0)

    def test_histogram_quantiles_and_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.mean() == pytest.approx(22.0)
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert 1.0 <= histogram.quantile(0.5) <= 100.0
        assert histogram.quantile(1.0) == 100.0

    def test_get_or_create_is_idempotent_but_kind_strict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        assert registry.get("missing") is None

    def test_as_dict_and_render(self):
        registry = MetricsRegistry()
        registry.counter("a/ops").inc(3)
        registry.gauge("b/level").set(1.5)
        registry.histogram("c/lat").observe(2.0)
        snapshot_dict = registry.as_dict()
        assert snapshot_dict["a/ops"]["value"] == 3
        assert snapshot_dict["c/lat"]["count"] == 1
        table = registry.render()
        for name in ("a/ops", "b/level", "c/lat"):
            assert name in table
        assert len(registry) == 3
        assert registry.names() == ["a/ops", "b/level", "c/lat"]


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExport:
    def _traced_run(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)

        def proc():
            with tracer.span("phase.alpha"):
                yield sim.timeout(2.0)
            tracer.instant("marker", n=1)
            with tracer.span("phase.beta"):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        return tracer

    def test_trace_events_shape(self):
        tracer = self._traced_run()
        events = trace_events(tracer)
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert metadata and complete and instants
        # Metadata first, then events sorted by timestamp.
        assert events[:len(metadata)] == metadata
        timestamps = [(e["ts"], e["tid"]) for e in events[len(metadata):]]
        assert timestamps == sorted(timestamps)
        (alpha,) = [e for e in complete if e["name"] == "phase.alpha"]
        assert alpha["ts"] == 0.0          # µs
        assert alpha["dur"] == 2000.0      # 2 ms
        assert alpha["cat"] == "phase"
        assert alpha["pid"] == 1

    def test_write_chrome_trace(self, tmp_path):
        tracer = self._traced_run()
        out = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, out)
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count

    def test_phase_attribution_sums_phase_spans(self):
        tracer = self._traced_run()
        totals = phase_attribution(tracer)
        assert totals == {"alpha": 2.0, "beta": 1.0}
        table = render_attribution(totals, count=1)
        assert "alpha" in table and "beta" in table and "total" in table

    def test_span_summary(self):
        tracer = self._traced_run()
        summary = span_summary(tracer)
        assert list(summary) == sorted(summary)
        assert summary["phase.alpha"]["count"] == 1
        assert summary["phase.alpha"]["total_ms"] == 2.0
        assert summary["marker"]["max_ms"] == 0.0
        assert "marker" in render_span_summary(tracer)


# ---------------------------------------------------------------------------
# Host integration + determinism acceptance
# ---------------------------------------------------------------------------
def _boot_storm(variant, tracing, count=3, registry=None):
    sim = Simulator()
    trace = EventTrace().attach(sim)
    tracer = Tracer(metrics=registry).attach(sim) if tracing else None
    host = Host(variant=variant, seed=0, sim=sim, pool_target=count + 8,
                shell_memory_kb=DAYTIME.memory_kb)
    host.warmup(20.0 * (count + 8))
    records = [host.create_vm(DAYTIME) for _ in range(count)]
    return host, records, trace, tracer


class TestHostIntegration:
    def test_fig05_attribution_matches_recorder_exactly(self):
        """The acceptance criterion: span-derived per-phase totals equal
        the PhaseRecorder's accumulated series with exact float
        equality (same sim.now samples, same summation order)."""
        _host, records, _trace, tracer = _boot_storm("xl", tracing=True)
        expected = {phase: sum(r.phases[phase] for r in records)
                    for phase in PHASES}
        assert phase_attribution(tracer) == expected

    @pytest.mark.parametrize("variant", ["xl", "chaos+xs", "lightvm"])
    def test_tracing_never_perturbs_the_timeline(self, variant):
        """EventTrace replay digests must be byte-identical whether or
        not a tracer is attached: the tracer is timeline-read-only."""
        _h1, _r1, off, _ = _boot_storm(variant, tracing=False)
        _h2, _r2, on, _ = _boot_storm(variant, tracing=True)
        assert off.digest() == on.digest()

    def test_tracer_digest_is_replay_stable(self):
        _h1, _r1, _t1, first = _boot_storm("lightvm", tracing=True)
        _h2, _r2, _t2, second = _boot_storm("lightvm", tracing=True)
        assert first.digest() == second.digest()
        assert first.spans  # non-trivial timeline

    def test_no_spans_leak_open_after_a_storm(self):
        _host, _records, _trace, tracer = _boot_storm("xl", tracing=True)
        assert tracer.open_spans() == []

    def test_hypercall_instants_match_hypervisor_counters(self):
        host, _records, _trace, tracer = _boot_storm("chaos+noxs",
                                                     tracing=True)
        recorded = sum(1 for s in tracer.spans
                       if s.name.startswith("hypercall."))
        assert recorded == sum(host.hypervisor.hypercall_counts.values())

    def test_xenstore_ops_produce_spans(self):
        host, _records, _trace, tracer = _boot_storm("xl", tracing=True)
        assert tracer.by_name("xenstore.txn_commit")
        assert tracer.by_name("xl.create_vm")
        assert host.xenstore.stats["ops"] > 0

    def test_collect_host_metrics_and_snapshot_agree(self):
        host, _records, _trace, _tracer = _boot_storm("chaos+xs",
                                                      tracing=True)
        registry = collect_host_metrics(host)
        stats = snapshot(host)
        assert stats.xenstore_ops == registry.get("xenstore/ops").value
        assert stats.event_channels_dom0 == \
            registry.get("hypervisor/event_channels/dom0").value
        assert stats.grants_dom0 == \
            registry.get("hypervisor/grants/dom0").value
        assert stats.domains_by_state.get("running", 0) == \
            registry.get("domains/running").value
        assert stats.guest_memory_mb == pytest.approx(
            registry.get("memory/guest_kb").value / 1024.0)

    def test_span_histograms_populated_during_storm(self):
        registry = MetricsRegistry()
        _host, _records, _trace, _tracer = _boot_storm(
            "lightvm", tracing=True, registry=registry)
        claim = registry.get("span/shellpool.claim")
        assert claim is not None and claim.count >= 3
