"""Tests for the unikernel build system (§3.1)."""

import pytest

from repro.guests import DAYTIME_UNIKERNEL, GuestKind
from repro.unikernel import (APPLICATIONS, AppSource, LIBRARY_OBJECTS,
                             LibraryObject, LinkError, build, link,
                             size_report)


class TestUniverse:
    def test_universe_symbols_self_consistent(self):
        provided = {symbol for obj in LIBRARY_OBJECTS.values()
                    for symbol in obj.provides}
        for obj in LIBRARY_OBJECTS.values():
            for symbol in obj.needs:
                assert symbol in provided, "%s needs %s" % (obj.name,
                                                            symbol)

    def test_applications_resolvable(self):
        for name in APPLICATIONS:
            link(name)

    def test_daytime_is_50_loc(self):
        """The paper's exact figure for the daytime server."""
        assert APPLICATIONS["daytime"].loc == 50


class TestLinker:
    def test_reachability_pruning(self):
        """The noop unikernel must not drag in the network stack."""
        result = link("noop")
        assert result.includes("minios-core")
        assert not result.includes("lwip")
        assert not result.includes("minios-netfront")

    def test_daytime_pulls_lwip_and_netfront(self):
        result = link("daytime")
        assert result.includes("lwip")
        assert result.includes("minios-netfront")
        assert result.includes("newlib-mini")
        assert not result.includes("micropython-core")

    def test_undefined_symbol_is_loud(self):
        bad = AppSource("bad", 10, needs=("quantum_teleport",))
        with pytest.raises(LinkError, match="quantum_teleport"):
            link(bad)

    def test_unknown_app_rejected(self):
        with pytest.raises(LinkError):
            link("emacs")

    def test_duplicate_providers_rejected(self):
        universe = {
            "a": LibraryObject("a", 1, provides=("sym",)),
            "b": LibraryObject("b", 1, provides=("sym",)),
        }
        app = AppSource("x", 1, needs=("sym",))
        with pytest.raises(LinkError, match="defined by both"):
            link(app, universe=universe)

    def test_image_size_is_sum_of_parts(self):
        result = link("noop")
        expected = (result.app.size_kb
                    + sum(o.size_kb for o in result.objects)
                    + result.ELF_OVERHEAD_KB)
        assert result.image_kb == expected


class TestBuild:
    def test_daytime_matches_paper_sizes(self):
        """§3.1: 480 KB image, 3.6 MB of RAM — within 20%."""
        item = build("daytime")
        assert item.image.kernel_size_kb == pytest.approx(480, rel=0.2)
        assert item.image.memory_kb == pytest.approx(3686, rel=0.25)

    def test_minipython_and_tls_around_1mb(self):
        """§3.1: "both have images of around 1MB"."""
        for name in ("minipython", "tls-proxy"):
            item = build(name)
            assert 700 <= item.image.kernel_size_kb <= 1400, name

    def test_clickos_firewall_matches_7_1(self):
        """§7.1: 1.7 MB image, 8 MB of RAM."""
        item = build("clickos-firewall")
        assert item.image.kernel_size_kb == pytest.approx(1740, rel=0.1)
        assert item.image.memory_kb == pytest.approx(8192, rel=0.15)

    def test_network_apps_get_a_vif(self):
        assert build("daytime").image.vifs == 1
        assert build("noop").image.vifs == 0

    def test_built_image_boots_on_lightvm(self):
        from repro.core import Host
        item = build("daytime")
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(item.image)
        assert record.total_ms == pytest.approx(
            4.4, abs=2.0)  # the catalogue daytime's neighbourhood

    def test_boot_time_close_to_catalogue(self):
        item = build("daytime")
        assert item.image.boot_cpu_ms == pytest.approx(
            DAYTIME_UNIKERNEL.boot_cpu_ms, abs=1.2)

    def test_kind_is_unikernel(self):
        assert build("noop").image.kind is GuestKind.UNIKERNEL

    def test_size_report_renders(self):
        text = size_report([build("noop"), build("daytime")])
        assert "unikernel-noop" in text
        assert "KB" in text
