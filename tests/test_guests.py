"""Tests for guest images, the catalogue, and the boot model."""

import pytest

from repro.guests import (CATALOG, DAYTIME_UNIKERNEL, DEBIAN, GuestBootError,
                          GuestKind, NOOP_UNIKERNEL, TINYX, boot_guest,
                          lookup)
from repro.hypervisor import DEV_VIF, DeviceEntry, Hypervisor, DomainState
from repro.noxs import NoxsModule
from repro.sim import Simulator
from repro.xenstore import XenStoreDaemon


class TestCatalog:
    def test_lookup_known(self):
        assert lookup("daytime") is DAYTIME_UNIKERNEL

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            lookup("windows-server-2016")

    def test_paper_sizes(self):
        assert DAYTIME_UNIKERNEL.kernel_size_kb == 480
        assert DAYTIME_UNIKERNEL.memory_kb == pytest.approx(3686, abs=200)
        assert DEBIAN.disk_size_kb == 1126400  # 1.1 GB
        assert TINYX.kernel_size_kb == 9728    # 9.5 MB

    def test_kinds(self):
        assert DAYTIME_UNIKERNEL.kind is GuestKind.UNIKERNEL
        assert TINYX.kind is GuestKind.TINYX
        assert DEBIAN.kind is GuestKind.DISTRO

    def test_unikernels_are_perfectly_idle(self):
        for image in CATALOG.values():
            if image.kind is GuestKind.UNIKERNEL:
                assert image.idle_cpu_weight == 0.0

    def test_with_kernel_size_clones(self):
        fat = DAYTIME_UNIKERNEL.with_kernel_size(1024 * 1024)
        assert fat.kernel_size_kb == 1024 * 1024
        assert DAYTIME_UNIKERNEL.kernel_size_kb == 480
        assert fat.name == DAYTIME_UNIKERNEL.name

    def test_device_count(self):
        assert NOOP_UNIKERNEL.device_count == 0
        assert DEBIAN.device_count == 2


class TestBoot:
    def _platform(self):
        sim = Simulator()
        hv = Hypervisor(sim, memory_kb=8 * 1024 * 1024, total_cores=4,
                        dom0_cores=1, dom0_memory_kb=64 * 1024)
        return sim, hv

    def _run(self, sim, gen):
        def wrapper():
            result = yield from gen
            return result
        proc = sim.process(wrapper())
        return sim.run(until=proc)

    def test_noop_boot_no_devices(self):
        sim, hv = self._platform()
        dom = hv.domctl_create(memory_kb=NOOP_UNIKERNEL.memory_kb)
        hv.domctl_unpause(dom)
        report = self._run(sim, boot_guest(sim, hv, dom, NOOP_UNIKERNEL))
        assert report.device_ms == 0.0
        assert report.total_ms == pytest.approx(
            NOOP_UNIKERNEL.boot_cpu_ms + NOOP_UNIKERNEL.boot_fixed_ms,
            rel=0.01)

    def test_boot_requires_running_state(self):
        sim, hv = self._platform()
        dom = hv.domctl_create()
        with pytest.raises(Exception):
            self._run(sim, boot_guest(sim, hv, dom, NOOP_UNIKERNEL))

    def test_devices_without_control_plane_rejected(self):
        sim, hv = self._platform()
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        with pytest.raises(GuestBootError):
            self._run(sim, boot_guest(sim, hv, dom, DAYTIME_UNIKERNEL))

    def test_noxs_boot_parses_device_page(self):
        sim, hv = self._platform()
        noxs = NoxsModule(sim, hv)
        dom = hv.domctl_create(memory_kb=DAYTIME_UNIKERNEL.memory_kb)
        hv.devpage_create(dom)

        def setup_and_boot():
            entry = yield from noxs.ioctl_create_device(dom, DEV_VIF)
            yield from noxs.write_devpage(dom, entry)
            hv.domctl_unpause(dom)
            report = yield from boot_guest(sim, hv, dom, DAYTIME_UNIKERNEL)
            return report

        proc = sim.process(setup_and_boot())
        report = sim.run(until=proc)
        assert report.device_ms > 0
        # The guest bound the channel and mapped the control page.
        assert hv.event_channels.count_for(dom.domid) == 1
        from repro.hypervisor import STATE_CONNECTED
        assert dom.device_page.entries()[0][1].state != 0
        assert dom.device_page.read(0).state == STATE_CONNECTED

    def test_xenstore_boot_reads_backend_info(self):
        sim, hv = self._platform()
        xs = XenStoreDaemon(sim)
        dom = hv.domctl_create(memory_kb=DAYTIME_UNIKERNEL.memory_kb)
        # Back-end published its connection details (normally done during
        # toolstack device creation).
        port = hv.event_channels.alloc_unbound(0, dom.domid)
        ref = hv.grants.grant_access(0, dom.domid, frame=0x2000)
        base = "/local/domain/0/backend/vif/%d/0" % dom.domid
        xs.tree.write(base + "/event-channel", str(port))
        xs.tree.write(base + "/grant-ref", str(ref))
        hv.domctl_unpause(dom)
        report = self._run(
            sim, boot_guest(sim, hv, dom, DAYTIME_UNIKERNEL, xenstore=xs))
        assert report.device_ms > 0
        front = "/local/domain/%d/device/vif/0/state" % dom.domid
        assert xs.tree.read(front) == "connected"
        assert xs.ambient_clients == 1

    def test_xenstore_boot_missing_backend_fails(self):
        sim, hv = self._platform()
        xs = XenStoreDaemon(sim)
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        with pytest.raises(GuestBootError):
            self._run(sim, boot_guest(sim, hv, dom, DAYTIME_UNIKERNEL,
                                      xenstore=xs))

    def test_contention_slows_boot(self):
        def boot_time(extra_guests):
            sim, hv = self._platform()
            for _ in range(extra_guests):
                idle = hv.domctl_create(memory_kb=1024)
                hv.domctl_unpause(idle)
            dom = hv.domctl_create(memory_kb=TINYX.memory_kb)
            hv.domctl_unpause(dom)
            image = TINYX.with_kernel_size(TINYX.kernel_size_kb)
            # Strip devices so we test the CPU path in isolation.
            import dataclasses
            image = dataclasses.replace(image, vifs=0)
            start = sim.now
            self._run(sim, boot_guest(sim, hv, dom, image))
            return sim.now - start

        # 900 idle guests over 3 cores -> 300 co-residents.
        assert boot_time(900) > boot_time(0) * 2

    def test_idle_weight_applied_after_boot(self):
        sim, hv = self._platform()
        import dataclasses
        image = dataclasses.replace(TINYX, vifs=0)
        dom = hv.domctl_create(memory_kb=image.memory_kb)
        hv.domctl_unpause(dom)
        self._run(sim, boot_guest(sim, hv, dom, image))
        assert dom.background_weight == pytest.approx(image.idle_cpu_weight)
