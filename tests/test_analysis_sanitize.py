"""Tests for the runtime sanitizers and the dual-run digest checker."""

import pytest

from repro.analysis import (EventTrace, ReplayDivergence, Sanitizer,
                            SanitizerViolation, assert_replay_identical,
                            canonical, verify_replay)
from repro.sim import (Resource, RngRegistry, RngStream, SimulationError,
                       Simulator, Store)


class TestCanonical:
    def test_scalars(self):
        assert canonical(None) == "None"
        assert canonical(True) == "True"
        assert canonical(42) == "42"
        assert canonical("x") == "'x'"

    def test_float_uses_exact_bits(self):
        assert canonical(0.1) == (0.1).hex()

    def test_containers_recurse(self):
        assert canonical([1, (2, 3)]) == "[1,(2,3)]"
        assert canonical({"a": 1}) == "{'a':1}"

    def test_objects_collapse_to_type_name(self):
        class Payload:
            pass

        a, b = canonical(Payload()), canonical(Payload())
        assert a == b == "<Payload>"  # no id() addresses leak in

    def test_exceptions_keep_args(self):
        assert canonical(ValueError("boom")) == "ValueError('boom')"

    def test_depth_bounded(self):
        nested = [1]
        for _ in range(10):
            nested = [nested]
        assert "..." in canonical(nested)


class TestEventTrace:
    def test_counts_and_digests_every_event(self):
        sim = Simulator()
        trace = EventTrace().attach(sim)
        for _ in range(3):
            sim.timeout(1.0)
        sim.run()
        assert trace.events == 3
        assert len(trace.digest()) == 64

    def test_identical_runs_identical_digests(self):
        def run():
            sim = Simulator()
            trace = EventTrace().attach(sim)
            sim.schedule(1.0, lambda: None)
            sim.timeout(2.5, value="payload")
            sim.run()
            return trace.digest()

        assert run() == run()

    def test_time_sensitive(self):
        def run(delays):
            sim = Simulator()
            trace = EventTrace().attach(sim)
            for delay in delays:
                sim.timeout(delay)
            sim.run()
            return trace.digest()

        # Same processed order but different timestamps -> different
        # timeline.  (Swapped *creation* order of identical timeouts is
        # invisible by design: the processed timeline is what matters.)
        assert run([1.0, 2.0]) != run([1.0, 3.0])
        assert run([1.0, 2.0]) == run([1.0, 2.0])

    def test_payload_sensitive(self):
        def run(value):
            sim = Simulator()
            trace = EventTrace().attach(sim)
            sim.timeout(1.0, value=value)
            sim.run()
            return trace.digest()

        assert run("a") != run("b")


class TestSanitizerDoubleTrigger:
    def test_recorded_even_when_raise_is_swallowed(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)
        event = sim.event()
        event.succeed("first")
        try:
            event.succeed("second")
        except SimulationError:
            pass
        sim.run()
        assert any("re-triggered" in v for v in san.check())

    def test_fail_after_succeed_recorded(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("late"))
        sim.run()
        assert len(san.check()) == 1


class TestSanitizerStalledProcesses:
    def test_deadlocked_process_reported(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)

        def stuck():
            yield sim.event()  # nobody will ever trigger this

        sim.process(stuck())
        sim.run()
        violations = san.check()
        assert any("never finished" in v for v in violations)

    def test_finished_process_clean(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)

        def quick():
            yield sim.timeout(1.0)

        sim.process(quick())
        sim.run()
        san.assert_clean()

    def test_daemon_processes_exempt(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)

        def forever():
            while True:
                yield sim.event()

        sim.process(forever()).daemon = True
        sim.run()
        san.assert_clean()


class TestSanitizerWaiters:
    def test_resource_queue_waiter_reported(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)
        resource = Resource(sim, capacity=1)

        def hog():
            with resource.request() as req:
                yield req
                yield sim.event()  # hold the slot forever

        def waiter():
            with resource.request() as req:
                yield req

        sim.process(hog())
        sim.process(waiter())
        sim.run()
        violations = san.check()
        assert any("waiter(s) still queued" in v for v in violations)

    def test_store_blocked_getter_reported(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)
        store = Store(sim)

        def starved():
            yield store.get()

        sim.process(starved())
        sim.run()
        assert any("blocked getter" in v for v in san.check())

    def test_satisfied_store_clean(self):
        sim = Simulator()
        san = Sanitizer().attach(sim)
        store = Store(sim)
        store.put("item")

        def fed():
            yield store.get()

        sim.process(fed())
        sim.run()
        san.assert_clean()


class TestSanitizerRngCollisions:
    def test_duplicate_derivation_detected(self):
        san = Sanitizer()
        with san.watch_rng():
            RngStream(0, "dup")
            RngStream(0, "dup")
        assert any("derived twice" in v for v in san.check())

    def test_registry_cache_is_not_a_collision(self):
        san = Sanitizer()
        with san.watch_rng():
            registry = RngRegistry(seed=0)
            registry.stream("a")
            registry.stream("a")  # cached, not re-derived
        san.assert_clean()

    def test_watch_scope_ends_with_context(self):
        san = Sanitizer()
        with san.watch_rng():
            RngStream(0, "x")
        RngStream(0, "x")  # outside the watch: not recorded
        san.assert_clean()
        assert RngStream.observers == []

    def test_assert_clean_raises_with_details(self):
        san = Sanitizer()
        with san.watch_rng():
            RngStream(1, "s")
            RngStream(1, "s")
        with pytest.raises(SanitizerViolation, match="derived twice"):
            san.assert_clean()


class TestVerifyReplay:
    def test_deterministic_scenario_identical(self):
        def scenario(sim):
            rng = RngStream(4, "jitter")
            for _ in range(10):
                sim.timeout(rng.random())
            sim.run()

        report = verify_replay(scenario)
        assert report.identical
        assert report.event_counts == [10, 10]
        assert "IDENTICAL" in report.render()

    def test_nondeterministic_scenario_diverges(self):
        ticket = [0]

        def scenario(sim):
            # Deliberately leaks state across runs — the exact hazard
            # the checker exists to catch.
            ticket[0] += 1
            sim.timeout(float(ticket[0]))
            sim.run()

        report = verify_replay(scenario)
        assert not report.identical
        with pytest.raises(ReplayDivergence):
            assert_replay_identical(scenario)

    def test_requires_two_runs(self):
        with pytest.raises(ValueError):
            verify_replay(lambda sim: None, runs=1)

    def test_host_boot_storm_replays_identically(self):
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL

        def scenario(sim):
            host = Host(variant="lightvm", seed=11, sim=sim,
                        pool_target=8,
                        shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
            host.warmup(300.0)
            for _ in range(3):
                host.create_vm(DAYTIME_UNIKERNEL)
            sim.run(until=sim.now + 50.0)

        assert assert_replay_identical(scenario).identical

    def test_faulted_boot_storm_replays_identically(self):
        from repro.core import Host
        from repro.faults import FaultPlan
        from repro.guests import DAYTIME_UNIKERNEL

        def scenario(sim):
            host = Host(variant="xl", seed=11, sim=sim,
                        fault_plan=FaultPlan.uniform(0.05, seed=11))
            for _ in range(3):
                try:
                    host.create_vm(DAYTIME_UNIKERNEL)
                except Exception:
                    pass
            sim.run(until=sim.now + 200.0)

        report = assert_replay_identical(scenario)
        assert report.identical
        assert report.event_counts[0] > 0
