"""Replay-digest identity for crash-and-recover runs.

The PR 2 contract extends through the recovery layer: same seed + same
FaultPlan => identical EventTrace digest, *crashes included*.  Every
schedule here actually crashes something (a daemon crash and a toolstack
crash), recovers, and must digest identically across two fresh runs.
"""

import pytest

from repro.faults import FaultRule
from repro.recovery import campaign

#: A schedule that reliably kills both layers mid-run: the daemon on the
#: 20th charged op and the toolstack create on phase 2 of guest 2.
CRASHY = (FaultRule(point="xenstore.daemon_crash", at=(20,), kind="crash"),
          FaultRule(point="toolstack.create", at=(6,), kind="crash"))


class TestDualRunDigestIdentity:
    @pytest.mark.parametrize("scenario", ["boot-storm", "churn"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_crash_and_recover_digests_identically(self, scenario, seed):
        runs = [campaign.run_schedule(CRASHY, seed=seed,
                                      scenario=scenario, count=6)
                for _ in range(2)]
        first, second = runs
        # The crashes really happened...
        assert first.recovery["watchdog"]["crashes"] == 1
        assert first.errors.get("ToolstackCrashed", 0) == 1
        assert first.recovery["reaped"]["create"] == 1
        # ...the run recovered...
        assert first.ok
        # ...and the two timelines are bit-identical.
        assert first.digest == second.digest
        assert first.violations == second.violations
        assert first.guests == second.guests

    def test_different_seeds_diverge_under_probabilistic_faults(self):
        # Occurrence-based rules fire identically regardless of seed;
        # probabilistic ones draw from the seed's fault streams, so the
        # timelines must differ (and each seed must still self-replay).
        probabilistic = (FaultRule(point="xenstore.message",
                                   probability=0.05, kind="drop"),)
        one = campaign.run_schedule(probabilistic, seed=0, count=6)
        two = campaign.run_schedule(probabilistic, seed=1, count=6)
        assert one.digest != two.digest
        again = campaign.run_schedule(probabilistic, seed=0, count=6)
        assert again.digest == one.digest

    def test_schedule_changes_the_digest(self):
        calm = campaign.run_schedule((), seed=0, count=6)
        crashy = campaign.run_schedule(CRASHY, seed=0, count=6)
        assert calm.ok and crashy.ok
        assert calm.digest != crashy.digest
