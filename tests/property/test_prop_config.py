"""Property-based tests for the xl.cfg parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guests import CATALOG
from repro.toolstack import ConfigError, VMConfig, parse_config_text

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=24)


@given(names, st.sampled_from(sorted(CATALOG)),
       st.integers(min_value=1, max_value=4096))
@settings(max_examples=200, deadline=None)
def test_render_parse_roundtrip(name, image_name, memory_mb):
    image = CATALOG[image_name]
    original = VMConfig.for_image(image, name,
                                  memory_kb=memory_mb * 1024)
    parsed = parse_config_text(original.render())
    assert parsed.name == name
    assert parsed.image is image
    assert parsed.memory_kb == memory_mb * 1024
    assert len(parsed.vifs) == len(original.vifs)
    assert len(parsed.vbds) == len(original.vbds)


@given(st.text(max_size=200))
@settings(max_examples=300, deadline=None)
def test_parser_never_crashes_uncontrolled(text):
    """Arbitrary input either parses or raises ConfigError — nothing
    else escapes."""
    try:
        config = parse_config_text(text)
    except ConfigError:
        return
    assert config.name
    assert config.image is not None


@given(names, st.lists(st.sampled_from(
    ["mac=00:16:3e:00:00:01", "bridge=xenbr0", "rate=10Mb/s"]),
    min_size=0, max_size=3))
@settings(max_examples=150, deadline=None)
def test_vif_params_survive_roundtrip(name, params):
    text = (
        'name = "%s"\n'
        'kernel = "/images/daytime.img"\n' % name)
    if params:
        text += "vif = [ '%s' ]\n" % ",".join(params)
    config = parse_config_text(text)
    if params:
        for param in params:
            key, _sep, value = param.partition("=")
            assert config.vifs[0][key] == value
    else:
        assert config.vifs == []
