"""Property-based tests for the unikernel linker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unikernel import (APPLICATIONS, AppSource, LIBRARY_OBJECTS,
                             LinkError, link)

ALL_SYMBOLS = sorted({symbol for obj in LIBRARY_OBJECTS.values()
                      for symbol in obj.provides})


@given(st.lists(st.sampled_from(ALL_SYMBOLS), min_size=1, max_size=8),
       st.integers(min_value=1, max_value=5000))
@settings(max_examples=200, deadline=None)
def test_any_valid_symbol_set_links(symbols, loc):
    app = AppSource("fuzz", loc, needs=tuple(symbols))
    result = link(app)
    # Closure property: every need of every included object is provided
    # by some included object.
    provided = {s for obj in result.objects for s in obj.provides}
    for obj in result.objects:
        for symbol in obj.needs:
            assert symbol in provided
    for symbol in symbols:
        assert symbol in provided


@given(st.lists(st.sampled_from(ALL_SYMBOLS), min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_link_is_minimal(symbols):
    """Every included object is reachable: dropping any one breaks a
    needed symbol."""
    app = AppSource("fuzz", 100, needs=tuple(symbols))
    result = link(app)
    included = {obj.name for obj in result.objects}
    for victim in included:
        remaining = {name: obj for name, obj in LIBRARY_OBJECTS.items()
                     if name != victim}
        try:
            smaller = link(app, universe=remaining)
        except LinkError:
            continue  # victim was load-bearing: good
        # If it still links, the victim must genuinely be absent from
        # the new closure too (i.e. it was never required directly, but
        # then it should not have been in the original closure).
        assert victim not in {obj.name for obj in smaller.objects}
        raise AssertionError("object %s was included but unnecessary"
                             % victim)


@given(st.sampled_from(sorted(APPLICATIONS)),
       st.sampled_from(sorted(APPLICATIONS)))
@settings(max_examples=50, deadline=None)
def test_superset_needs_never_smaller_image(app_a, app_b):
    a = APPLICATIONS[app_a]
    merged = AppSource("merged", a.loc,
                       needs=tuple(set(a.needs)
                                   | set(APPLICATIONS[app_b].needs)))
    assert link(merged).image_kb >= link(a).image_kb
