"""Stateful property testing of the whole platform.

Hypothesis drives random sequences of lifecycle operations (create,
destroy, pause, unpause, save, restore) against a LightVM host and checks
global invariants after every step: memory conservation, scheduler
accounting, device-page consistency, and domain-state sanity.
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)
from hypothesis import strategies as st

from repro.core import Host, HostSpec
from repro.guests import DAYTIME_UNIKERNEL, MINIPYTHON_UNIKERNEL
from repro.hypervisor import DomainState

SPEC = HostSpec(name="prop", cores=4, memory_gb=16, dom0_cores=1)
IMAGES = (DAYTIME_UNIKERNEL, MINIPYTHON_UNIKERNEL)


class HostLifecycle(RuleBasedStateMachine):
    @initialize(variant=st.sampled_from(["lightvm", "chaos+noxs"]))
    def set_up(self, variant):
        self.host = Host(spec=SPEC, variant=variant, pool_target=4)
        self.host.warmup(1000)
        self.running = []   # (domain, config)
        self.paused = []
        self.saved = []     # SavedImage

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(image=st.sampled_from(IMAGES))
    def create(self, image):
        config = self.host.config_for(image)
        record = self.host.create_vm(config)
        assert record.domain.state == DomainState.RUNNING
        self.running.append((record.domain, config))

    @precondition(lambda self: self.running)
    @rule(data=st.data())
    def destroy(self, data):
        index = data.draw(st.integers(0, len(self.running) - 1))
        domain, _config = self.running.pop(index)
        self.host.destroy_vm(domain)
        assert domain.state == DomainState.DEAD

    @precondition(lambda self: self.running)
    @rule(data=st.data())
    def pause(self, data):
        index = data.draw(st.integers(0, len(self.running) - 1))
        domain, config = self.running.pop(index)
        self.host.pause_vm(domain)
        assert domain.state == DomainState.PAUSED
        self.paused.append((domain, config))

    @precondition(lambda self: self.paused)
    @rule(data=st.data())
    def unpause(self, data):
        index = data.draw(st.integers(0, len(self.paused) - 1))
        domain, config = self.paused.pop(index)
        self.host.unpause_vm(domain)
        assert domain.state == DomainState.RUNNING
        self.running.append((domain, config))

    @precondition(lambda self: self.running)
    @rule(data=st.data())
    def save(self, data):
        index = data.draw(st.integers(0, len(self.running) - 1))
        domain, config = self.running.pop(index)
        self.saved.append(self.host.save_vm(domain, config))

    @precondition(lambda self: self.saved)
    @rule()
    def restore(self):
        saved = self.saved.pop()
        domain = self.host.restore_vm(saved)
        assert domain.state == DomainState.RUNNING
        self.running.append((domain, saved.config))

    @rule()
    def let_time_pass(self):
        self.host.sim.run(until=self.host.sim.now + 50.0)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def memory_is_conserved(self):
        if not hasattr(self, "host"):
            return
        mem = self.host.hypervisor.memory
        owned = sum(mem.owned_kb(owner) for owner in mem.owners())
        assert mem.free_kb + owned == mem.total_kb

    @invariant()
    def running_population_matches_model(self):
        if not hasattr(self, "host"):
            return
        live = [d for d in self.host.hypervisor.domains.values()
                if d.domid != 0 and d.state in (DomainState.RUNNING,
                                                DomainState.PAUSED)]
        assert len(live) == len(self.running) + len(self.paused)

    @invariant()
    def every_tracked_domain_holds_memory(self):
        if not hasattr(self, "host"):
            return
        mem = self.host.hypervisor.memory
        for domain, _config in self.running + self.paused:
            assert mem.owned_kb(domain.domid) >= domain.memory_kb

    @invariant()
    def device_pages_stay_parseable(self):
        if not hasattr(self, "host"):
            return
        from repro.hypervisor import DevicePage
        for domain, _config in self.running:
            if domain.device_page is not None:
                entries = DevicePage.parse(
                    domain.device_page.readonly_view())
                assert len(entries) == domain.device_page.count


TestHostLifecycle = HostLifecycle.TestCase
TestHostLifecycle.settings = settings(max_examples=25,
                                      stateful_step_count=20,
                                      deadline=None)
