"""Property tests for the trampoline resume scheduler.

The run loop resumes continuation-slot processes inline (the trampoline)
when no witness is attached, parks waits in ``Event._cont``, and recycles
bootstrap/kick cells through a pool.  These properties pin the three
contracts that make that safe:

* **Dual-kernel identity** — randomly interleaved interrupt / timeout /
  join races at coinciding instants produce byte-identical
  :class:`~repro.analysis.sanitize.EventTrace` digests on the optimized
  kernel and the frozen naive reference kernel.
* **Hook neutrality** — attaching the sanitizer or the
  :class:`~repro.analysis.witness.RaceWitness` (which *disables* the
  inline trampoline and routes every wake through ``Process._resume``)
  leaves the digest unchanged, proving the inline path and the method
  path schedule the same timeline.
* **No residue** — after any interleaving, no event is left holding a
  dead continuation or callback for a finished process.

One deliberate carve-out: the generated interrupter always yields a
zero-delay timeout after each ``interrupt()`` so the kick delivers before
it fires again.  Double-undelivered interrupts are *defined* to differ
from the seed kernel (``PendingInterrupt`` instead of silently dropping
the first cause) and are covered by dedicated regression tests in
``tests/test_sim_process.py``.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.analysis.sanitize import EventTrace, Sanitizer  # noqa: E402
from repro.analysis.witness import RaceWitness  # noqa: E402
from repro.sim import Interrupt, Simulator  # noqa: E402

from reference_kernel import Simulator as RefSimulator  # noqa: E402

#: Small delay palette with heavy same-instant collision pressure.
DELAYS = (0.0, 0.5, 1.0, 2.0)

programs = st.tuples(
    # Per-sleeper action lists: each entry is a timeout delay to wait on.
    st.lists(st.lists(st.sampled_from(DELAYS), min_size=1, max_size=6),
             min_size=1, max_size=4),
    # Interrupter plan: (target index, gap before interrupting).
    st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                       st.sampled_from(DELAYS)),
             min_size=0, max_size=5),
    # Joiner plan: (target index, delay before joining).
    st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                       st.sampled_from(DELAYS)),
             min_size=0, max_size=3),
)


def run_program(sim_cls, program, sanitizer=False, witness=False):
    """Drive one generated interleaving; return (trace, sleeper procs)."""
    sleeper_actions, interrupt_plan, join_plan = program
    sim = sim_cls()
    trace = EventTrace().attach(sim)
    if sanitizer:
        Sanitizer().attach(sim)
    if witness:
        RaceWitness().attach(sim)
    procs = []

    def sleeper(actions):
        for delay in actions:
            try:
                yield sim.timeout(delay)
            except Interrupt:
                pass

    for actions in sleeper_actions:
        procs.append(sim.process(sleeper(actions)))

    def interrupter(plan):
        for index, gap in plan:
            yield sim.timeout(gap)
            target = procs[index % len(procs)]
            if target.is_alive:
                target.interrupt("poke")
            # Let the kick deliver before the next interrupt; see the
            # module docstring carve-out.
            yield sim.timeout(0.0)

    if interrupt_plan:
        sim.process(interrupter(interrupt_plan))

    def joiner(index, delay):
        yield sim.timeout(delay)
        yield procs[index % len(procs)]  # immediate resume if finished

    for index, delay in join_plan:
        sim.process(joiner(index, delay))

    sim.run()
    return trace, procs


@given(programs)
@settings(max_examples=75, deadline=None)
def test_race_interleavings_digest_identical_to_reference(program):
    optimized, _ = run_program(Simulator, program)
    reference, _ = run_program(RefSimulator, program)
    assert optimized.events == reference.events
    assert optimized.events > 0
    assert optimized.digest() == reference.digest()


@given(programs)
@settings(max_examples=50, deadline=None)
def test_sanitizer_and_witness_are_digest_neutral(program):
    plain, _ = run_program(Simulator, program)
    sanitized, _ = run_program(Simulator, program, sanitizer=True)
    witnessed, _ = run_program(Simulator, program, witness=True)
    # The witness run exercises the Process._resume path for every wake
    # (the run loop disables the inline trampoline when one is attached),
    # so this equality proves trampoline and method dispatch schedule the
    # same timeline.
    assert plain.digest() == sanitized.digest()
    assert plain.digest() == witnessed.digest()


@given(programs)
@settings(max_examples=50, deadline=None)
def test_no_dead_continuations_left_behind(program):
    _, procs = run_program(Simulator, program)
    for proc in procs:
        assert not proc.is_alive
        assert proc._waiting_on is None
    # Fresh spawns on the same simulator reuse pooled cells without
    # inheriting stale state.
    sim = procs[0].sim
    seen = []

    def prober():
        value = yield sim.timeout(0.0, value="fresh")
        seen.append(value)

    sim.process(prober())
    sim.run()
    assert seen == ["fresh"]
