"""Property-based tests for the XenStore tree, watches and transactions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xenstore import (NoEntError, Transaction, TransactionConflict,
                            WatchManager, XenStoreTree)

path_segments = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=3),
    min_size=1, max_size=4)
paths = path_segments.map(lambda parts: "/" + "/".join(parts))


@given(st.dictionaries(paths, st.text(max_size=8), min_size=1,
                       max_size=20))
@settings(max_examples=150, deadline=None)
def test_last_write_wins_roundtrip(writes):
    tree = XenStoreTree()
    for path, value in writes.items():
        tree.write(path, value)
    for path, value in writes.items():
        # A later write may have re-created an ancestor as an inner node,
        # but the leaf value itself must match unless overwritten.
        assert tree.read(path) == writes[path]


@given(st.lists(paths, min_size=1, max_size=15))
@settings(max_examples=150, deadline=None)
def test_rm_removes_exactly_the_subtree(path_list):
    tree = XenStoreTree()
    for index, path in enumerate(path_list):
        tree.write(path, str(index))
    victim = path_list[0]
    tree.rm(victim)
    assert not tree.exists(victim)
    for path in path_list:
        inside = path == victim or path.startswith(victim + "/")
        assert tree.exists(path) == (not inside)


@given(st.lists(paths, min_size=1, max_size=10), paths)
@settings(max_examples=150, deadline=None)
def test_watch_matches_iff_naive_prefix_match(watch_paths, fired):
    """The indexed watch manager must agree with the naive definition."""
    manager = WatchManager()
    hits = []
    for index, path in enumerate(watch_paths):
        manager.add(0, path, str(index),
                    lambda _p, token: hits.append(token))
    manager.fire(fired)

    def naive_match(watch_path):
        watch_path = watch_path.rstrip("/") or "/"
        if watch_path == "/":
            return True
        return fired == watch_path or fired.startswith(watch_path + "/")

    expected = {str(i) for i, p in enumerate(watch_paths)
                if naive_match(p)}
    assert set(hits) == expected


@given(st.dictionaries(paths, st.text(max_size=5), min_size=1,
                       max_size=8),
       st.dictionaries(paths, st.text(max_size=5), min_size=0,
                       max_size=8))
@settings(max_examples=150, deadline=None)
def test_transaction_is_atomic(tx_writes, interference):
    """Either every staged write lands, or none do."""
    tree = XenStoreTree()
    tx = Transaction(tree, 1, 0)
    for path, value in tx_writes.items():
        tx.read_set.setdefault(path, None if not tree.exists(path)
                               else tree.generation_of(path))
        tx.write(path, value)
    for path, value in interference.items():
        tree.write(path, value + "!")
    try:
        tx.commit()
        committed = True
    except TransactionConflict:
        committed = False
    if committed:
        for path, value in tx_writes.items():
            assert tree.read(path) == value
    else:
        # None of the transaction's private values leaked.
        for path, value in tx_writes.items():
            if value == "":
                continue  # parent auto-creation writes empty values
            try:
                assert tree.read(path) != value or \
                    interference.get(path, "") + "!" == value
            except NoEntError:
                pass


@given(st.dictionaries(paths, st.text(max_size=5), min_size=1,
                       max_size=10))
@settings(max_examples=100, deadline=None)
def test_interference_on_read_set_always_conflicts(writes):
    tree = XenStoreTree()
    for path, value in writes.items():
        tree.write(path, value)
    tx = Transaction(tree, 1, 0)
    target = sorted(writes)[0]
    tx.read(target)
    tree.write(target, "changed")
    try:
        tx.commit()
        conflicted = False
    except TransactionConflict:
        conflicted = True
    assert conflicted
