"""Property-based tests for the XenStore tree, watches and transactions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xenstore import (NoEntError, Transaction, TransactionConflict,
                            WatchManager, XenStoreTree)

path_segments = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=3),
    min_size=1, max_size=4)
paths = path_segments.map(lambda parts: "/" + "/".join(parts))


@given(st.dictionaries(paths, st.text(max_size=8), min_size=1,
                       max_size=20))
@settings(max_examples=150, deadline=None)
def test_last_write_wins_roundtrip(writes):
    tree = XenStoreTree()
    for path, value in writes.items():
        tree.write(path, value)
    for path, value in writes.items():
        # A later write may have re-created an ancestor as an inner node,
        # but the leaf value itself must match unless overwritten.
        assert tree.read(path) == writes[path]


@given(st.lists(paths, min_size=1, max_size=15))
@settings(max_examples=150, deadline=None)
def test_rm_removes_exactly_the_subtree(path_list):
    tree = XenStoreTree()
    for index, path in enumerate(path_list):
        tree.write(path, str(index))
    victim = path_list[0]
    tree.rm(victim)
    assert not tree.exists(victim)
    for path in path_list:
        inside = path == victim or path.startswith(victim + "/")
        assert tree.exists(path) == (not inside)


@given(st.lists(paths, min_size=1, max_size=10), paths)
@settings(max_examples=150, deadline=None)
def test_watch_matches_iff_naive_prefix_match(watch_paths, fired):
    """The indexed watch manager must agree with the naive definition."""
    manager = WatchManager()
    hits = []
    for index, path in enumerate(watch_paths):
        manager.add(0, path, str(index),
                    lambda _p, token: hits.append(token))
    manager.fire(fired)

    def naive_match(watch_path):
        watch_path = watch_path.rstrip("/") or "/"
        if watch_path == "/":
            return True
        return fired == watch_path or fired.startswith(watch_path + "/")

    expected = {str(i) for i, p in enumerate(watch_paths)
                if naive_match(p)}
    assert set(hits) == expected


@given(st.lists(paths, min_size=1, max_size=12),
       st.lists(paths, min_size=1, max_size=6))
@settings(max_examples=150, deadline=None)
def test_watch_fire_order_matches_linear_scan(watch_paths, fired_paths):
    """The prefix index must deliver the *same watches in the same
    order* as a naive daemon that linearly scans its registration list:
    matches sorted shallowest-prefix-first, registration order within a
    prefix.  The delivery order feeds the event heap, so this is part of
    the determinism contract, not a cosmetic detail."""
    manager = WatchManager()
    registered = []
    for index, path in enumerate(watch_paths):
        registered.append(manager.add(index % 3, path, "t%d" % index,
                                      lambda _p, token: None))

    for fired in fired_paths:
        normalized = fired.rstrip("/") or "/"

        def matches(watch):
            return (watch.path == "/" or normalized == watch.path
                    or normalized.startswith(watch.path + "/"))

        expected = sorted(
            (w for w in registered if matches(w)),
            key=lambda w: 0 if w.path == "/" else w.path.count("/"))
        assert manager.fire(fired) == expected


@given(st.dictionaries(paths, st.text(max_size=5), min_size=1,
                       max_size=8),
       st.dictionaries(paths, st.text(max_size=5), min_size=0,
                       max_size=8))
@settings(max_examples=150, deadline=None)
def test_transaction_is_atomic(tx_writes, interference):
    """Either every staged write lands, or none do."""
    tree = XenStoreTree()
    tx = Transaction(tree, 1, 0)
    for path, value in tx_writes.items():
        tx.read_set.setdefault(path, None if not tree.exists(path)
                               else tree.generation_of(path))
        tx.write(path, value)
    for path, value in interference.items():
        tree.write(path, value + "!")
    try:
        tx.commit()
        committed = True
    except TransactionConflict:
        committed = False
    if committed:
        for path, value in tx_writes.items():
            assert tree.read(path) == value
    else:
        # None of the transaction's private values leaked.
        for path, value in tx_writes.items():
            if value == "":
                continue  # parent auto-creation writes empty values
            try:
                assert tree.read(path) != value or \
                    interference.get(path, "") + "!" == value
            except NoEntError:
                pass


@given(st.dictionaries(paths, st.text(max_size=5), min_size=1,
                       max_size=10))
@settings(max_examples=100, deadline=None)
def test_interference_on_read_set_always_conflicts(writes):
    tree = XenStoreTree()
    for path, value in writes.items():
        tree.write(path, value)
    tx = Transaction(tree, 1, 0)
    target = sorted(writes)[0]
    tx.read(target)
    tree.write(target, "changed")
    try:
        tx.commit()
        conflicted = False
    except TransactionConflict:
        conflicted = True
    assert conflicted


name_ops = st.lists(st.tuples(
    st.sampled_from(("set-name", "deep-write", "rm-name", "rm-domain",
                     "rm-all")),
    st.integers(min_value=1, max_value=5),       # domid
    st.text(alphabet="xyz", min_size=0, max_size=2)),  # name value
    min_size=1, max_size=25)


@given(name_ops)
@settings(max_examples=150, deadline=None)
def test_name_index_matches_linear_scan(operations):
    """``name_in_use`` (the O(1) admission index) must agree with the
    naive scan of ``/local/domain/*/name`` after any interleaving of
    name writes, implicit name-node creation, and subtree removals."""
    tree = XenStoreTree()
    for op, domid, value in operations:
        base = "/local/domain/%d" % domid
        try:
            if op == "set-name":
                tree.write(base + "/name", value)
            elif op == "deep-write":
                # Implicitly creates the name node with value "".
                tree.write(base + "/name/sub", value)
            elif op == "rm-name":
                tree.rm(base + "/name")
            elif op == "rm-domain":
                tree.rm(base)
            else:
                tree.rm("/local/domain")
        except NoEntError:
            pass

    def naive_names():
        try:
            domains = tree.directory("/local/domain")
        except NoEntError:
            return []
        out = []
        for domid in domains:
            path = "/local/domain/%s/name" % domid
            if tree.exists(path):
                out.append(tree.read(path))
        return out

    in_use = naive_names()
    for name in set(in_use) | {"", "x", "y", "zz", "other"}:
        assert tree.name_in_use(name) == (name in in_use), name
