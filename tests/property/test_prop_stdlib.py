"""Property-based tests for the scenario standard library.

Randomizes component combinations — host profile, guest image, traffic
pattern with overrides, fault plan, seed set — and requires the core
stdlib invariants to hold at every sampled point: specs round-trip
through their source payload digest-identically, replayed scenarios
reproduce their digest, and the sweep manifest is a pure function of
(spec, seed set) with the worker count unobservable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stdlib import ScenarioSpec, run_scenario, run_sweep, storm_spec

hosts = st.sampled_from(["xl@1", "lightvm@1", "chaos+xs@1",
                         "chaos+noxs@1", "lightvm-batched@1"])
vm_images = st.sampled_from(["daytime@1", "noop@1", "tinyx@1"])
faults = st.sampled_from(["none@1", "light@1", "heavy@1"])

traffics = st.one_of(
    st.just("boot-storm@1"),
    st.fixed_dictionaries({
        "ref": st.just("bursty@1"),
        "burst_size": st.integers(min_value=1, max_value=6),
        "burst_gap_ms": st.floats(min_value=1.0, max_value=200.0,
                                  allow_nan=False, allow_infinity=False),
    }),
    st.fixed_dictionaries({
        "ref": st.just("churn@1"),
        "churn_working_set": st.integers(min_value=1, max_value=4),
    }),
)

specs = st.builds(
    storm_spec,
    name=st.just("prop"),
    host=hosts,
    guest=vm_images,
    guests=st.integers(min_value=1, max_value=6),
    traffic=traffics,
    faults=faults,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(specs)
@settings(max_examples=60, deadline=None)
def test_spec_source_round_trips_digest(spec):
    assert ScenarioSpec.from_dict(spec.source).digest() == spec.digest()


@given(specs, seeds)
@settings(max_examples=30, deadline=None)
def test_scenario_digest_is_replay_stable(spec, seed):
    first = run_scenario(spec, seed=seed)
    second = run_scenario(spec, seed=seed)
    assert first.digest == second.digest
    assert first.stats == second.stats
    assert first.series == second.series


@given(specs,
       st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                max_size=4, unique=True),
       st.integers(min_value=2, max_value=4))
@settings(max_examples=12, deadline=None)
def test_sweep_manifest_worker_invariant(spec, seed_set, workers):
    inline = run_sweep(spec, seed_set, workers=1)
    parallel = run_sweep(spec, seed_set, workers=workers)
    assert inline["manifest_digest"] == parallel["manifest_digest"]
    assert inline["runs"] == parallel["runs"]
    assert inline["stats"] == parallel["stats"]
