"""Property-based tests for noxs device pages and control blocks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor import (DEV_SYSCTL, DEV_VBD, DEV_VIF, MAX_ENTRIES,
                              STATE_CLOSED, STATE_CONNECTED,
                              STATE_INITIALISING, DeviceEntry, DevicePage)
from repro.noxs import DeviceControlPage

entries = st.builds(
    DeviceEntry,
    dev_type=st.sampled_from([DEV_VIF, DEV_VBD, DEV_SYSCTL]),
    state=st.sampled_from([STATE_INITIALISING, STATE_CONNECTED,
                           STATE_CLOSED]),
    backend_domid=st.integers(min_value=0, max_value=0xFFFF),
    evtchn_port=st.integers(min_value=0, max_value=0xFFFFFFFF),
    grant_ref=st.integers(min_value=0, max_value=0xFFFFFFFF),
    mac=st.binary(min_size=6, max_size=6),
)


@given(entries)
@settings(max_examples=200, deadline=None)
def test_entry_pack_unpack_roundtrip(entry):
    assert DeviceEntry.unpack(entry.pack()) == entry


@given(st.lists(entries, min_size=1, max_size=MAX_ENTRIES))
@settings(max_examples=100, deadline=None)
def test_guest_parse_sees_exactly_what_dom0_wrote(entry_list):
    page = DevicePage()
    for entry in entry_list:
        page.add(entry)
    parsed = DevicePage.parse(page.readonly_view())
    assert parsed == entry_list
    assert page.count == len(entry_list)


@given(st.lists(entries, min_size=2, max_size=20),
       st.data())
@settings(max_examples=100, deadline=None)
def test_remove_then_parse_consistent(entry_list, data):
    page = DevicePage()
    indices = [page.add(entry) for entry in entry_list]
    victim = data.draw(st.sampled_from(range(len(indices))))
    page.remove(indices[victim])
    parsed = DevicePage.parse(page.readonly_view())
    expected = [e for i, e in enumerate(entry_list) if i != victim]
    assert sorted(parsed) == sorted(expected)


@given(st.binary(min_size=6, max_size=6),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=200, deadline=None)
def test_control_page_fields_are_independent(mac, ring, features):
    page = DeviceControlPage(0x1000, DEV_VIF, mac=mac)
    page.ring_ref = ring
    page.feature_bits = features
    page.state = STATE_CONNECTED
    assert page.mac == mac
    assert page.ring_ref == ring
    assert page.feature_bits == features
    assert page.state == STATE_CONNECTED
