"""Property-based tests for the physical-memory allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor import MemoryAllocator, OutOfMemoryError

TOTAL_KB = 4096


@st.composite
def alloc_scripts(draw):
    """A sequence of (op, owner, size) operations."""
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=1, max_value=TOTAL_KB // 2)),
        min_size=1, max_size=40))
    return ops


@given(alloc_scripts())
@settings(max_examples=200, deadline=None)
def test_accounting_always_conserves_memory(script):
    mem = MemoryAllocator(TOTAL_KB)
    for op, owner, size in script:
        if op == "alloc":
            try:
                mem.allocate(owner, size)
            except OutOfMemoryError:
                pass
        else:
            mem.free(owner)
        # Invariant: free + sum(owned) == total, always.
        owned = sum(mem.owned_kb(o) for o in mem.owners())
        assert mem.free_kb + owned == TOTAL_KB
        assert 0 <= mem.free_kb <= TOTAL_KB


@given(alloc_scripts())
@settings(max_examples=200, deadline=None)
def test_no_two_owners_share_an_extent(script):
    mem = MemoryAllocator(TOTAL_KB)
    for op, owner, size in script:
        if op == "alloc":
            try:
                mem.allocate(owner, size)
            except OutOfMemoryError:
                pass
        else:
            mem.free(owner)
    claimed = []
    for owner in mem.owners():
        claimed.extend(mem._owned[owner])
    claimed.sort(key=lambda e: e.start_kb)
    for left, right in zip(claimed, claimed[1:]):
        assert left.end_kb <= right.start_kb


@given(alloc_scripts())
@settings(max_examples=200, deadline=None)
def test_freeing_everything_restores_single_extent(script):
    mem = MemoryAllocator(TOTAL_KB)
    for op, owner, size in script:
        if op == "alloc":
            try:
                mem.allocate(owner, size)
            except OutOfMemoryError:
                pass
        else:
            mem.free(owner)
    for owner in list(mem.owners()):
        mem.free(owner)
    assert mem.free_kb == TOTAL_KB
    assert mem.fragments() == 1


@given(alloc_scripts())
@settings(max_examples=200, deadline=None)
def test_free_list_stays_coalesced_and_in_bounds(script):
    """After every operation the free list is sorted, strictly separated
    (no adjacent or overlapping extents — they must have coalesced), has
    no empty extents, and stays inside [0, total)."""
    mem = MemoryAllocator(TOTAL_KB)
    for op, owner, size in script:
        if op == "alloc":
            try:
                mem.allocate(owner, size)
            except OutOfMemoryError:
                pass
        else:
            mem.free(owner)
        extents = mem._free
        assert extents == sorted(extents, key=lambda e: e.start_kb)
        assert all(e.size_kb > 0 for e in extents)
        assert all(0 <= e.start_kb and e.end_kb <= TOTAL_KB
                   for e in extents)
        for left, right in zip(extents, extents[1:]):
            # A gap must separate neighbours: end == start would mean
            # _insert_free failed to coalesce them.
            assert left.end_kb < right.start_kb


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                max_size=20))
@settings(max_examples=100, deadline=None)
def test_allocation_sizes_are_exact(sizes):
    mem = MemoryAllocator(TOTAL_KB * 4)
    for index, size in enumerate(sizes):
        extents = mem.allocate(index, size)
        assert sum(e.size_kb for e in extents) == size
