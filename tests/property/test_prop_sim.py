"""Property-based tests for the simulation kernel itself."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link
from repro.sim import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1,
                max_size=50))
@settings(max_examples=200, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert sorted(d for _t, d in fired) == sorted(delays)
    assert sim.now == max(delays)


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                max_size=30))
@settings(max_examples=200, deadline=None)
def test_equal_timestamps_fire_fifo(tags):
    sim = Simulator()
    fired = []
    for tag in tags:
        sim.schedule(5.0, fired.append, tag)
    sim.run()
    assert fired == tags


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                max_size=20))
@settings(max_examples=150, deadline=None)
def test_run_until_never_overshoots(delays):
    sim = Simulator()
    for delay in delays:
        sim.timeout(delay)
    horizon = max(delays) / 2
    sim.run(until=horizon)
    assert sim.now == horizon
    sim.run()
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1,
                max_size=20))
@settings(max_examples=150, deadline=None)
def test_processes_observe_causal_time(gaps):
    sim = Simulator()
    observed = []

    def walker():
        for gap in gaps:
            before = sim.now
            yield gap
            observed.append(sim.now - before)

    sim.process(walker())
    sim.run()
    for gap, measured in zip(gaps, observed):
        assert measured == pytest.approx(gap, abs=1e-9)


@given(st.floats(min_value=1.0, max_value=10000.0),
       st.floats(min_value=0.01, max_value=100.0),
       st.floats(min_value=1.0, max_value=100000.0))
@settings(max_examples=200, deadline=None)
def test_link_transfer_monotone(size_kb, latency_ms, bandwidth_mbps):
    sim = Simulator()
    link = Link(sim, latency_ms=latency_ms, bandwidth_mbps=bandwidth_mbps)
    base = link.transfer_ms(size_kb)
    assert base > latency_ms
    assert link.transfer_ms(size_kb * 2) > base
    faster = Link(sim, latency_ms=latency_ms,
                  bandwidth_mbps=bandwidth_mbps * 2)
    assert faster.transfer_ms(size_kb) < base


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0),
                          st.floats(min_value=0.0, max_value=100.0)),
                min_size=1, max_size=25))
@settings(max_examples=150, deadline=None)
def test_clock_never_goes_backwards(schedule):
    sim = Simulator()
    seen = []

    def spawner():
        for start_delay, inner in schedule:
            yield start_delay
            seen.append(sim.now)
            sim.schedule(inner, lambda: seen.append(sim.now))

    sim.process(spawner())
    sim.run()
    assert seen == sorted(seen)
