"""Property-based tests for shared rings: losslessness and liveness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.rings import RingFullError, SharedRing


@given(st.integers(min_value=0, max_value=6),
       st.lists(st.sampled_from(["push", "pop", "final"]), min_size=1,
                max_size=200))
@settings(max_examples=200, deadline=None)
def test_no_loss_no_reorder_under_any_interleaving(order, script):
    ring = SharedRing(order=order)
    pushed, popped = [], []
    counter = 0
    for op in script:
        if op == "push":
            if ring.is_full:
                continue
            ring.push(counter)
            pushed.append(counter)
            counter += 1
        elif op == "pop":
            if ring.is_empty:
                continue
            popped.append(ring.pop())
        else:
            ring.final_check()
    popped.extend(ring.drain())
    assert popped == pushed
    assert 0 <= ring.unconsumed <= ring.size


@given(st.lists(st.sampled_from(["push", "drain"]), min_size=1,
                max_size=100))
@settings(max_examples=200, deadline=None)
def test_sleeping_consumer_is_always_woken(script):
    """Liveness: whenever the consumer drains and re-arms, the next push
    must notify — work can never be stranded on a quiet ring."""
    ring = SharedRing(order=4)
    sleeping = True  # consumer starts asleep with prod_event armed at 1
    counter = 0
    for op in script:
        if op == "push":
            if ring.is_full:
                continue
            notified = ring.push(counter)
            counter += 1
            if sleeping:
                assert notified, "push did not wake a sleeping consumer"
                sleeping = False
        else:
            ring.drain()
            if not ring.final_check():
                sleeping = True
    # End state: nothing unconsumed while the consumer sleeps without a
    # pending notification.
    if sleeping:
        assert ring.is_empty


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_full_ring_always_rejects(extra):
    ring = SharedRing(order=3)
    for value in range(ring.size):
        ring.push(value)
    for _ in range(extra):
        try:
            ring.push("overflow")
            raise AssertionError("push into full ring succeeded")
        except RingFullError:
            pass
    assert ring.drain() == list(range(ring.size))
