"""Property-based tests for the metrics helpers."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (cdf_points, mean, median, percentile,
                                sample_indices)

value_lists = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1,
                       max_size=200)


@given(value_lists, st.floats(min_value=0, max_value=100))
@settings(max_examples=300, deadline=None)
def test_percentile_bounded_by_extremes(values, q):
    result = percentile(values, q)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(value_lists, st.floats(min_value=0, max_value=100),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=300, deadline=None)
def test_percentile_monotone_in_q(values, q1, q2):
    low, high = sorted((q1, q2))
    assert percentile(values, low) <= percentile(values, high) + 1e-9


@given(value_lists)
@settings(max_examples=200, deadline=None)
def test_median_splits_the_data(values):
    m = median(values)
    below = sum(1 for v in values if v <= m + 1e-9)
    above = sum(1 for v in values if v >= m - 1e-9)
    assert below >= len(values) / 2
    assert above >= len(values) / 2


@given(value_lists)
@settings(max_examples=200, deadline=None)
def test_mean_between_extremes(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


@given(value_lists, st.integers(min_value=2, max_value=40))
@settings(max_examples=200, deadline=None)
def test_cdf_is_a_distribution(values, points):
    cdf = cdf_points(values, points=points)
    xs = [x for x, _f in cdf]
    fs = [f for _x, f in cdf]
    assert xs == sorted(set(xs))  # strictly increasing values
    assert fs == sorted(fs)
    assert fs[-1] == pytest.approx(1.0)
    assert all(0 < f <= 1 for f in fs)
    assert xs[-1] == max(values)


@given(value_lists, st.integers(min_value=2, max_value=40))
@settings(max_examples=200, deadline=None)
def test_cdf_fractions_are_exact(values, points):
    """Every emitted (v, f) satisfies f == P(X <= v) over the sample."""
    ordered = sorted(values)
    for value, fraction in cdf_points(values, points=points):
        assert fraction == bisect.bisect_right(ordered, value) / len(ordered)


@given(st.integers(min_value=1, max_value=100000),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=300, deadline=None)
def test_sample_indices_valid_and_cover_endpoints(total, samples):
    indices = sample_indices(total, samples)
    assert indices == sorted(set(indices))
    assert indices[0] == 0
    if samples >= 2 or total == 1:
        assert indices[-1] == total - 1
    assert len(indices) <= max(samples, total)
    assert all(0 <= i < total for i in indices)
