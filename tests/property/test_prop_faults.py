"""Property tests: random seeded fault plans through a boot storm.

Whatever fault schedule Hypothesis draws, two invariants must hold:

* the host leaks nothing — every failed creation rolled back fully; and
* the run is bit-reproducible — the same (seed, plan) pair produces the
  exact same timeline, fault schedule, and outcome sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Host
from repro.faults import FaultPlan
from repro.guests import DAYTIME_UNIKERNEL

VARIANTS = ("xl", "chaos+xs", "lightvm")
CREATES = 5

rates = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2 ** 31)


def storm(variant, rate, seed):
    """One fault-injected boot storm; returns its full observable trace."""
    host = Host(variant=variant, seed=seed, pool_target=CREATES + 2,
                fault_plan=FaultPlan.uniform(rate, seed=seed))
    host.warmup(1500)
    outcomes = []
    for _ in range(CREATES):
        try:
            outcomes.append(host.create_vm(DAYTIME_UNIKERNEL).create_ms)
        except Exception as exc:
            outcomes.append(type(exc).__name__)
    host.sim.run(until=host.sim.now + 500.0)
    return (outcomes, host.sim.now, host.fault_metrics(),
            host.check_invariants())


@given(st.sampled_from(VARIANTS), rates, seeds)
@settings(max_examples=15, deadline=None)
def test_random_fault_plans_never_leak(variant, rate, seed):
    _outcomes, _now, _metrics, violations = storm(variant, rate, seed)
    assert violations == []


@given(st.sampled_from(VARIANTS), rates, seeds)
@settings(max_examples=10, deadline=None)
def test_identical_seeds_identical_timelines(variant, rate, seed):
    assert storm(variant, rate, seed) == storm(variant, rate, seed)
