"""Property-based tests for Tinyx dependency resolution and kernel
trimming."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tinyx import (KERNEL_OPTIONS, KernelConfig, Package,
                         PackageUniverse, debian_universe,
                         default_boot_test, resolve_closure, trim)

UNIVERSE = debian_universe()
ALL_NAMES = UNIVERSE.names()
ALL_OPTIONS = sorted(KERNEL_OPTIONS)


@given(st.lists(st.sampled_from(ALL_NAMES), min_size=1, max_size=5),
       st.lists(st.sampled_from(ALL_NAMES), max_size=5))
@settings(max_examples=150, deadline=None)
def test_closure_is_dependency_closed(roots, blacklist):
    packages = resolve_closure(roots, UNIVERSE, blacklist=blacklist)
    names = {p.name for p in packages}
    black = set(blacklist)
    for package in packages:
        for dep in package.depends:
            assert dep in names or dep in black
    assert not names & black


@given(st.lists(st.sampled_from(ALL_NAMES), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_closure_topologically_ordered(roots):
    packages = resolve_closure(roots, UNIVERSE)
    position = {p.name: i for i, p in enumerate(packages)}
    for package in packages:
        for dep in package.depends:
            if dep in position:
                assert position[dep] < position[package.name]


@given(st.lists(st.sampled_from(ALL_NAMES), min_size=1, max_size=4),
       st.lists(st.sampled_from(ALL_NAMES), max_size=3))
@settings(max_examples=100, deadline=None)
def test_whitelist_always_included(roots, whitelist):
    packages = resolve_closure(roots, UNIVERSE, whitelist=whitelist)
    names = {p.name for p in packages}
    assert set(whitelist) <= names


@st.composite
def random_universes(draw):
    """Small random DAG-shaped package universes."""
    count = draw(st.integers(min_value=1, max_value=12))
    packages = []
    for index in range(count):
        deps = draw(st.lists(
            st.sampled_from(["p%d" % j for j in range(index)] or ["p0"]),
            max_size=3)) if index else []
        deps = [d for d in deps if d != "p%d" % index]
        packages.append(Package("p%d" % index, "1",
                                draw(st.integers(10, 500)),
                                depends=tuple(sorted(set(deps)))))
    return PackageUniverse(packages)


@given(random_universes(), st.data())
@settings(max_examples=100, deadline=None)
def test_resolution_on_random_dags(universe, data):
    names = universe.names()
    roots = data.draw(st.lists(st.sampled_from(names), min_size=1,
                               max_size=3))
    packages = resolve_closure(roots, universe)
    resolved = {p.name for p in packages}
    assert set(roots) <= resolved
    position = {p.name: i for i, p in enumerate(packages)}
    for package in packages:
        for dep in package.depends:
            assert position[dep] < position[package.name]


@given(st.lists(st.sampled_from(ALL_OPTIONS), min_size=1, max_size=15),
       st.lists(st.sampled_from(ALL_OPTIONS), min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_trim_never_breaks_the_boot_test(extra_options, candidates):
    """Whatever we ask the trim loop to try, the result still boots."""
    config = KernelConfig.tinyconfig()
    for option in ("CONFIG_XEN", "CONFIG_XEN_NETFRONT", "CONFIG_HVC_XEN",
                   "CONFIG_PROC_FS", "CONFIG_SYSFS", "CONFIG_TMPFS",
                   "CONFIG_INET"):
        config.enable(option)
    for option in extra_options:
        config.enable(option)
    test = default_boot_test("xen")
    assert test(config)
    report = trim(config, candidates, test)
    assert test(config)
    assert report.size_after_kb <= report.size_before_kb


@given(st.lists(st.sampled_from(ALL_OPTIONS), min_size=1, max_size=20))
@settings(max_examples=150, deadline=None)
def test_olddefconfig_reaches_consistent_fixpoint(options):
    config = KernelConfig()
    config.enabled = set(options)  # possibly inconsistent
    config.olddefconfig()
    for name in config.enabled:
        for requirement in KERNEL_OPTIONS[name].requires:
            assert requirement in config.enabled
