"""Property-based tests for the processor-sharing CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PSCore, Simulator

work_lists = st.lists(st.floats(min_value=0.1, max_value=50.0),
                      min_size=1, max_size=12)


@given(work_lists)
@settings(max_examples=150, deadline=None)
def test_simultaneous_tasks_finish_at_total_work(works):
    """A work-conserving single core finishes all simultaneously-submitted
    work exactly when the sum of work has been served."""
    sim = Simulator()
    core = PSCore(sim)
    events = [core.execute(work) for work in works]
    sim.run(until=sim.all_of(events))
    assert sim.now == pytest.approx(sum(works), rel=1e-6)
    assert core.busy_time() == pytest.approx(sum(works), rel=1e-6)


@given(work_lists)
@settings(max_examples=150, deadline=None)
def test_completion_order_matches_work_order(works):
    """With equal weights and simultaneous arrival, less work finishes
    no later than more work."""
    sim = Simulator()
    core = PSCore(sim)
    finish = {}
    for index, work in enumerate(works):
        done = core.execute(work)
        done.add_callback(
            lambda _e, i=index: finish.__setitem__(i, sim.now))
    sim.run()
    for i, wi in enumerate(works):
        for j, wj in enumerate(works):
            if wi < wj:
                assert finish[i] <= finish[j] + 1e-9


@given(work_lists, st.lists(st.floats(min_value=0.0, max_value=20.0),
                            min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_staggered_arrivals_conserve_work(works, gaps):
    """Total busy time equals total work no matter the arrival pattern."""
    sim = Simulator()
    core = PSCore(sim)

    def submitter():
        for work, gap in zip(works, gaps * 3):
            yield sim.timeout(gap)
            core.execute(work)

    sim.process(submitter())
    sim.run()
    submitted = works[:min(len(works), len(gaps * 3))]
    assert core.busy_time() == pytest.approx(sum(submitted), rel=1e-6)


@given(work_lists, st.floats(min_value=0.1, max_value=3.0))
@settings(max_examples=100, deadline=None)
def test_background_never_speeds_tasks_up(works, background):
    def total_time(bg):
        sim = Simulator()
        core = PSCore(sim)
        if bg:
            core.add_background(bg)
        events = [core.execute(work) for work in works]
        sim.run(until=sim.all_of(events))
        return sim.now

    assert total_time(background) >= total_time(0.0) - 1e-9
