"""Property-based backend-identity for the cluster layer.

Randomizes the epoch length (the lookahead), the latency slack above it,
the topology, and the traffic mix that drives cross-host message
interleavings — and requires the procs backend to reproduce the inline
backend's digest bit-for-bit at every sampled point.  Note digests are
*not* expected to be invariant across epoch lengths (barrier instants
are part of the timeline); the property is backend-independence at a
fixed config.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig

configs = st.fixed_dictionaries({
    "hosts": st.integers(min_value=1, max_value=4),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "guests": st.integers(min_value=1, max_value=6),
    "requests": st.integers(min_value=0, max_value=20),
    "migrations": st.integers(min_value=0, max_value=2),
    "epoch_ms": st.floats(min_value=1.0, max_value=25.0,
                          allow_nan=False, allow_infinity=False),
    "latency_slack_ms": st.floats(min_value=0.0, max_value=10.0,
                                  allow_nan=False, allow_infinity=False),
    "request_gap_ms": st.floats(min_value=0.25, max_value=4.0,
                                allow_nan=False, allow_infinity=False),
})


def _build(params):
    return ClusterConfig(
        hosts=params["hosts"], seed=params["seed"],
        guests=params["guests"], requests=params["requests"],
        migrations=params["migrations"], epoch_ms=params["epoch_ms"],
        net_latency_ms=params["epoch_ms"] + params["latency_slack_ms"],
        request_gap_ms=params["request_gap_ms"])


@given(configs, st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_procs_digest_matches_inline_everywhere(params, workers):
    reference = Cluster(_build(params), backend="inline").run()
    result = Cluster(_build(params), backend="procs",
                     workers=workers).run()
    assert result.digest == reference.digest
    assert result.host_digests == reference.host_digests
    assert result.stats == reference.stats


@given(configs)
@settings(max_examples=15, deadline=None)
def test_inline_rerun_is_bit_identical(params):
    first = Cluster(_build(params), backend="inline").run()
    second = Cluster(_build(params), backend="inline").run()
    assert first.digest == second.digest
    assert first.epochs == second.epochs
