"""RPR103 fixture: a read-modify-write of shared state spanning a yield.

``Host.admit`` reads ``self.booted``, yields (another process body can
run and bump the counter), then writes back the stale value — the
classic lost-update shape, reachable from two spawned process bodies
with no lock covering the read→write window.  ``admit_locked`` shows
the accepted fix.
"""

from repro.sim import Simulator
from repro.sim.resources import Resource


class Host:
    def __init__(self, sim: Simulator):
        self.sim = sim
        self.booted = 0
        self.counter_lock = Resource(sim, capacity=1, name="fix.counter")

    def admit(self):
        seen = self.booted
        yield self.sim.timeout(2.0)
        self.booted = seen + 1

    def admit_locked(self):
        with self.counter_lock.request() as request:
            yield request
            seen = self.booted
            yield self.sim.timeout(2.0)
            self.booted = seen + 1


def run(sim: Simulator) -> None:
    host = Host(sim)
    sim.process(host.admit())
    sim.process(host.admit())
    sim.process(host.admit_locked())
    sim.run()
