"""Negative fixture: disciplined locking the analyzer must pass clean.

Exercises every shape the real tree uses — an ascending family walk
under try/finally, scoped single-lock ``with`` blocks, and a
lock-covered read-modify-write across a yield — so a false positive on
any of them shows up here before it shows up on ``src/repro``.
"""

from repro.sim import Simulator
from repro.sim.resources import Resource


class Disciplined:
    def __init__(self, sim: Simulator, workers: int = 4):
        self.sim = sim
        self.shards = [
            Resource(sim, capacity=1, name="ok.shard[%d]" % index)
            for index in range(workers)
        ]
        self.ops = 0

    def single(self, index: int):
        with self.shards[index].request() as request:
            yield request
            yield self.sim.timeout(1.0)

    def global_op(self):
        requests = []
        try:
            for index in range(len(self.shards)):
                request = self.shards[index].request()
                requests.append(request)
                yield request
            seen = self.ops
            yield self.sim.timeout(1.0)
            self.ops = seen + 1
        finally:
            for request in reversed(requests):
                request.resource.release(request)


def run(sim: Simulator) -> None:
    store = Disciplined(sim)
    sim.process(store.single(0))
    sim.process(store.global_op())
    sim.run()
