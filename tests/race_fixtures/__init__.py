"""Seeded hazard programs for ``repro races`` (never imported at runtime).

Each module here is a *minimal* program exhibiting exactly one of the
hazards the static pass hunts; ``tests/test_analysis_races.py`` runs the
analyzer over these files and asserts the exact finding ids and line
numbers.  Keep them minimal and stable: the tests pin line numbers, so
editing a fixture means re-pinning its assertions.
"""
