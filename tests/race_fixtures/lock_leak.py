"""RPR102 fixture: manual acquire held across an exception-capable path.

``grab_unprotected`` requests a slot by hand and yields (a fault point:
anything the wait raises, or the later timeout, escapes with the lock
still held) with no try/finally releasing it.  The ``with``-based
sibling shows the clean pattern the rule accepts.
"""

from repro.sim import Simulator
from repro.sim.resources import Resource


class Pool:
    def __init__(self, sim: Simulator):
        self.sim = sim
        self.slot = Resource(sim, capacity=1, name="fix.slot")

    def grab_unprotected(self):
        request = self.slot.request()
        yield request
        yield self.sim.timeout(5.0)
        self.slot.release(request)

    def grab_scoped(self):
        with self.slot.request() as request:
            yield request
            yield self.sim.timeout(5.0)


def run(sim: Simulator) -> None:
    pool = Pool(sim)
    sim.process(pool.grab_unprotected())
    sim.process(pool.grab_scoped())
    sim.run()
