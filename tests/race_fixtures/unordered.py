"""RPR101 fixture: a shard family acquired in *descending* index order.

The daemon's contract is "global ops take all shards ascending"; this
program walks ``reversed(...)`` over the family, so two concurrent
global ops can meet head-on.  The acquires sit inside a try/finally
that releases them, so no RPR102 rides along — the only hazard is the
non-ascending self-edge.
"""

from repro.sim import Simulator
from repro.sim.resources import Resource


class ShardedStore:
    def __init__(self, sim: Simulator, workers: int = 4):
        self.sim = sim
        self.shards = [
            Resource(sim, capacity=1, name="fix.shard[%d]" % index)
            for index in range(workers)
        ]

    def global_op(self):
        requests = []
        try:
            for index in reversed(range(len(self.shards))):
                request = self.shards[index].request()
                requests.append(request)
                yield request
            yield self.sim.timeout(1.0)
        finally:
            for request in requests:
                request.resource.release(request)


def run(sim: Simulator) -> None:
    store = ShardedStore(sim)
    sim.process(store.global_op())
    sim.process(store.global_op())
    sim.run()
