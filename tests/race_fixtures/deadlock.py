"""RPR101 fixture: classic ABBA lock-order cycle across two processes."""

from repro.sim import Simulator
from repro.sim.resources import Resource


class Daemon:
    def __init__(self, sim: Simulator):
        self.sim = sim
        self.tree_lock = Resource(sim, capacity=1, name="fix.tree")
        self.journal_lock = Resource(sim, capacity=1, name="fix.journal")

    def writer(self):
        with self.tree_lock.request() as outer:
            yield outer
            with self.journal_lock.request() as inner:
                yield inner
                yield self.sim.timeout(1.0)

    def checkpointer(self):
        with self.journal_lock.request() as outer:
            yield outer
            with self.tree_lock.request() as inner:
                yield inner
                yield self.sim.timeout(1.0)


def run(sim: Simulator) -> None:
    daemon = Daemon(sim)
    sim.process(daemon.writer())
    sim.process(daemon.checkpointer())
    sim.run()
