"""Tests for VM configuration and the xl.cfg parser."""

import pytest

from repro.guests import DAYTIME_UNIKERNEL, DEBIAN
from repro.toolstack import ConfigError, VMConfig, parse_config_text


class TestForImage:
    def test_defaults_from_image(self):
        config = VMConfig.for_image(DAYTIME_UNIKERNEL, "vm1")
        assert config.name == "vm1"
        assert config.memory_kb == DAYTIME_UNIKERNEL.memory_kb
        assert len(config.vifs) == 1
        assert config.vifs[0]["mac"].startswith("00:16:3e")
        assert config.vbds == []

    def test_debian_gets_disk(self):
        config = VMConfig.for_image(DEBIAN, "deb1")
        assert len(config.vbds) == 1
        assert config.vbds[0]["target"].startswith("/dev/xvd")

    def test_memory_override(self):
        config = VMConfig.for_image(DAYTIME_UNIKERNEL, "vm1",
                                    memory_kb=8192)
        assert config.memory_kb == 8192

    def test_render_produces_text(self):
        config = VMConfig.for_image(DAYTIME_UNIKERNEL, "vm1")
        assert 'name = "vm1"' in config.text
        assert "vif = [" in config.text


class TestParser:
    def test_roundtrip(self):
        original = VMConfig.for_image(DAYTIME_UNIKERNEL, "round")
        parsed = parse_config_text(original.render())
        assert parsed.name == "round"
        assert parsed.image is DAYTIME_UNIKERNEL
        assert parsed.memory_kb == (original.memory_kb // 1024) * 1024
        assert len(parsed.vifs) == 1

    def test_parses_vif_params(self):
        text = (
            'name = "x"\n'
            'kernel = "/images/daytime.img"\n'
            "vif = [ 'bridge=xenbr0,mac=00:16:3e:aa:bb:cc' ]\n"
        )
        config = parse_config_text(text)
        assert config.vifs[0]["mac"] == "00:16:3e:aa:bb:cc"
        assert config.vifs[0]["bridge"] == "xenbr0"

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n"
            "\n"
            'name = "x"  # trailing\n'
            'kernel = "/images/noop.img"\n'
        )
        config = parse_config_text(text)
        assert config.name == "x"

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text('kernel = "/images/noop.img"\n')

    def test_missing_kernel_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text('name = "x"\n')

    def test_unknown_image_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text('name = "x"\nkernel = "/images/win95.img"\n')

    def test_garbage_line_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("this is not a config\n")

    def test_unparsable_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_config_text("name = unquoted-bareword\n")

    def test_memory_in_mib(self):
        text = ('name = "x"\nkernel = "/images/noop.img"\nmemory = 64\n')
        assert parse_config_text(text).memory_kb == 64 * 1024

    def test_vcpus(self):
        text = ('name = "x"\nkernel = "/images/noop.img"\nvcpus = 2\n')
        assert parse_config_text(text).vcpus == 2
