"""Tests for XenStore watches and the access log."""

import pytest

from repro.xenstore import AccessLog, WatchManager


class TestWatches:
    def test_exact_path_fires(self):
        mgr = WatchManager()
        hits = []
        mgr.add(0, "/backend/vif", "tok", lambda p, t: hits.append((p, t)))
        fired = mgr.fire("/backend/vif")
        assert len(fired) == 1
        assert hits == [("/backend/vif", "tok")]

    def test_subtree_fires(self):
        mgr = WatchManager()
        hits = []
        mgr.add(0, "/backend/vif", "tok", lambda p, t: hits.append(p))
        mgr.fire("/backend/vif/1/0/state")
        assert hits == ["/backend/vif/1/0/state"]

    def test_sibling_does_not_fire(self):
        mgr = WatchManager()
        hits = []
        mgr.add(0, "/backend/vif", "tok", lambda p, t: hits.append(p))
        mgr.fire("/backend/vbd/1")
        assert hits == []

    def test_prefix_is_component_wise(self):
        """/backend/vif must not match /backend/vif2."""
        mgr = WatchManager()
        hits = []
        mgr.add(0, "/backend/vif", "tok", lambda p, t: hits.append(p))
        mgr.fire("/backend/vif2/1")
        assert hits == []

    def test_root_watch_fires_on_everything(self):
        mgr = WatchManager()
        hits = []
        mgr.add(0, "/", "tok", lambda p, t: hits.append(p))
        mgr.fire("/anything/at/all")
        assert hits == ["/anything/at/all"]

    def test_multiple_watches_all_fire(self):
        mgr = WatchManager()
        hits = []
        for i in range(3):
            mgr.add(i, "/d", str(i), lambda p, t: hits.append(t))
        mgr.fire("/d/x")
        assert sorted(hits) == ["0", "1", "2"]

    def test_remove_watch(self):
        mgr = WatchManager()
        hits = []
        watch = mgr.add(0, "/d", "t", lambda p, t: hits.append(p))
        mgr.remove(watch)
        mgr.fire("/d")
        assert hits == []
        assert len(mgr) == 0

    def test_remove_for_domain(self):
        mgr = WatchManager()
        mgr.add(1, "/a", "t", lambda p, t: None)
        mgr.add(1, "/b", "t", lambda p, t: None)
        mgr.add(2, "/c", "t", lambda p, t: None)
        assert mgr.remove_for_domain(1) == 2
        assert len(mgr) == 1

    def test_scan_cost_counted_per_registered_watch(self):
        mgr = WatchManager()
        for i in range(5):
            mgr.add(i, "/w%d" % i, "t", lambda p, t: None)
        mgr.fire("/w0")
        assert mgr.scans_total == 5
        assert mgr.fired_total == 1


class TestAccessLog:
    def test_no_rotation_below_threshold(self):
        log = AccessLog(files=3, rotate_lines=10)
        for _ in range(9):
            assert log.record() == 0
        assert log.lines_in(0) == 9

    def test_rotation_at_threshold(self):
        log = AccessLog(files=3, rotate_lines=10)
        for _ in range(9):
            log.record()
        rotated = log.record()
        assert rotated == 3  # all files rotate in lock-step
        assert log.rotations == 3
        assert log.lines_in(0) == 0

    def test_disabled_log_never_rotates(self):
        log = AccessLog(files=2, rotate_lines=5, enabled=False)
        for _ in range(100):
            assert log.record() == 0
        assert log.total_lines == 0

    def test_default_parameters_match_paper(self):
        log = AccessLog()
        assert log.files == 20
        assert log.rotate_lines == 13215

    def test_multi_line_records(self):
        log = AccessLog(files=1, rotate_lines=10)
        assert log.record(lines=12) == 1  # single record crosses threshold

    def test_zero_and_negative_line_records_are_ignored(self):
        log = AccessLog(files=2, rotate_lines=5)
        assert log.record(lines=0) == 0
        assert log.record(lines=-3) == 0
        assert log.total_lines == 0
        assert log.lines_in(0) == 0

    def test_at_least_one_file_required(self):
        with pytest.raises(ValueError):
            AccessLog(files=0)

    def test_total_lines_counts_every_file(self):
        log = AccessLog(files=4, rotate_lines=100)
        log.record(lines=3)
        log.record()
        assert log.total_lines == 4 * 4  # (3 + 1) lines x 4 files
        assert all(log.lines_in(i) == 4 for i in range(4))

    def test_rotation_resets_counter_exactly(self):
        """A record that crosses the threshold zeroes the file; the
        *next* record starts the count fresh (no carried remainder)."""
        log = AccessLog(files=1, rotate_lines=10)
        log.record(lines=25)  # one giant access still rotates once
        assert log.rotations == 1
        assert log.lines_in(0) == 0
        log.record(lines=9)
        assert log.rotations == 1
        assert log.lines_in(0) == 9

    def test_repeated_rotations_accumulate(self):
        log = AccessLog(files=2, rotate_lines=3)
        for _ in range(9):
            log.record()
        assert log.rotations == 6  # 3 rotations x 2 files
        assert log.total_lines == 18
