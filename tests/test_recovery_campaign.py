"""The chaos campaign: seeded schedules, ddmin shrinking, reproducers.

Covers the acceptance fixture from the issue: a deliberately-broken
schedule (reap disabled, so a toolstack crash nobody recovers) must
shrink to at most two fault events, and the emitted reproducer JSON must
replay to the same violations and the same replay digest.
"""

import json

import pytest

from repro.faults import FaultRule
from repro.recovery import campaign


#: The deliberately-broken fixture: three rules, only the create crash
#: matters once nobody reaps.
BROKEN = (FaultRule(point="toolstack.create", at=(6,), kind="crash"),
          FaultRule(point="xenstore.message", at=(3,), kind="drop"),
          FaultRule(point="xenstore.commit", at=(2,), kind="conflict"))


def run_broken(schedule, seed=7):
    return campaign.run_schedule(schedule, seed=seed, reap=False, count=6)


class TestShrinking:
    def test_broken_schedule_shrinks_to_at_most_two_events(self):
        assert not run_broken(BROKEN).ok
        minimal = campaign.shrink(
            BROKEN, lambda subset: not run_broken(subset).ok)
        assert len(minimal) <= 2
        assert any(rule.point == "toolstack.create" for rule in minimal)

    def test_shrunk_schedule_is_one_minimal(self):
        minimal = campaign.shrink(
            BROKEN, lambda subset: not run_broken(subset).ok)
        for index in range(len(minimal)):
            subset = minimal[:index] + minimal[index + 1:]
            assert subset == () or run_broken(subset).ok

    def test_reproducer_json_replays_to_same_violation(self):
        minimal = campaign.shrink(
            BROKEN, lambda subset: not run_broken(subset).ok)
        final = run_broken(minimal)
        reproducer = campaign.make_reproducer(
            final, "boot-storm", "chaos+xs", "daytime", 6, None, False)
        # Round-trip through JSON text, as the CLI artifact does.
        reloaded = json.loads(json.dumps(reproducer))
        replayed = campaign.replay(reloaded)
        assert replayed.violations == final.violations
        assert replayed.digest == final.digest
        assert not replayed.ok

    def test_reaping_the_broken_schedule_passes(self):
        result = campaign.run_schedule(BROKEN, seed=7, reap=True, count=6)
        assert result.ok
        assert result.recovery["reaped"]["create"] == 1


class TestCampaign:
    def test_all_seeds_recover_clean(self):
        report = campaign.run_campaign(seeds=8, count=4)
        assert report.ok
        assert len(report.runs) == 8
        assert report.failures == []

    def test_churn_scenario_recovers_clean(self):
        report = campaign.run_campaign(seeds=6, count=6, scenario="churn")
        assert report.ok

    def test_no_reap_campaign_emits_shrunk_reproducers(self):
        report = campaign.run_campaign(seeds=8, count=6, reap=False)
        failing = [run for run in report.runs if not run.ok]
        assert len(report.failures) == len(failing)
        assert failing  # at least one seed crashes a create in 8 tries
        for reproducer in report.failures:
            assert reproducer["version"] == campaign.REPRODUCER_VERSION
            assert len(reproducer["schedule"]) <= 2
            replayed = campaign.replay(reproducer)
            assert replayed.violations == reproducer["violations"]
            assert replayed.digest == reproducer["digest"]

    def test_schedules_are_seed_deterministic(self):
        assert campaign.generate_schedule(3) == campaign.generate_schedule(3)
        assert campaign.generate_schedule(3) != campaign.generate_schedule(4)

    def test_rule_dict_roundtrip(self):
        rule = FaultRule(point="toolstack.create", at=(6,), kind="crash",
                         max_fires=1, delay_ms=2.5)
        assert campaign.rule_from_dict(campaign.rule_to_dict(rule)) == rule

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            campaign.run_schedule((), scenario="thundering-herd")

    def test_unknown_reproducer_version_rejected(self):
        with pytest.raises(ValueError):
            campaign.replay({"version": 99, "schedule": []})
