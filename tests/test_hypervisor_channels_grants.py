"""Tests for event channels and grant tables."""

import pytest

from repro.hypervisor import (EventChannelError, EventChannelTable,
                              GrantError, GrantTable)


class TestEventChannels:
    def test_alloc_unbound_then_bind(self):
        table = EventChannelTable()
        back_port = table.alloc_unbound(0, remote_domid=5)
        front_port = table.bind_interdomain(5, 0, back_port)
        assert table.channel(0, back_port).state == "interdomain"
        assert table.channel(5, front_port).remote_port == back_port

    def test_bind_wrong_domain_rejected(self):
        table = EventChannelTable()
        port = table.alloc_unbound(0, remote_domid=5)
        with pytest.raises(EventChannelError):
            table.bind_interdomain(6, 0, port)

    def test_bind_twice_rejected(self):
        table = EventChannelTable()
        port = table.alloc_unbound(0, remote_domid=5)
        table.bind_interdomain(5, 0, port)
        with pytest.raises(EventChannelError):
            table.bind_interdomain(5, 0, port)

    def test_notify_delivers_to_peer_handler(self):
        table = EventChannelTable()
        back = table.alloc_unbound(0, remote_domid=5)
        front = table.bind_interdomain(5, 0, back)
        hits = []
        table.on_notify(5, front, lambda: hits.append("front"))
        table.notify(0, back)
        assert hits == ["front"]
        assert table.total_notifications == 1

    def test_notify_unbound_rejected(self):
        table = EventChannelTable()
        port = table.alloc_unbound(0, remote_domid=5)
        with pytest.raises(EventChannelError):
            table.notify(0, port)

    def test_close_marks_peer_closed(self):
        table = EventChannelTable()
        back = table.alloc_unbound(0, remote_domid=5)
        front = table.bind_interdomain(5, 0, back)
        table.close(0, back)
        assert table.channel(5, front).state == "closed"
        with pytest.raises(EventChannelError):
            table.channel(0, back)

    def test_close_all_for_domain(self):
        table = EventChannelTable()
        for _ in range(3):
            table.alloc_unbound(7, remote_domid=0)
        assert table.count_for(7) == 3
        assert table.close_all_for(7) == 3
        assert table.count_for(7) == 0

    def test_unknown_channel_lookup(self):
        table = EventChannelTable()
        with pytest.raises(EventChannelError):
            table.channel(1, 99)


class TestGrantTable:
    def test_grant_and_map(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=0x1000)
        frame = grants.map_ref(0, 5, ref)
        assert frame == 0x1000

    def test_map_by_wrong_domain_rejected(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        with pytest.raises(GrantError):
            grants.map_ref(3, 5, ref)

    def test_double_map_rejected(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.map_ref(0, 5, ref)
        with pytest.raises(GrantError):
            grants.map_ref(0, 5, ref)

    def test_unmap_then_remap(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.map_ref(0, 5, ref)
        grants.unmap_ref(0, 5, ref)
        assert grants.map_ref(0, 5, ref) == 1

    def test_end_access_while_mapped_rejected(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.map_ref(0, 5, ref)
        with pytest.raises(GrantError):
            grants.end_access(5, ref)

    def test_end_access_removes_entry(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.end_access(5, ref)
        with pytest.raises(GrantError):
            grants.entry(5, ref)

    def test_revoke_all_force_ignores_mappings(self):
        grants = GrantTable()
        r1 = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.grant_access(5, grantee_domid=0, frame=2)
        grants.map_ref(0, 5, r1)
        assert grants.revoke_all_for(5, force=True) == 2
        assert grants.count_for(5) == 0

    def test_revoke_all_unforced_fails_when_mapped(self):
        grants = GrantTable()
        ref = grants.grant_access(5, grantee_domid=0, frame=1)
        grants.map_ref(0, 5, ref)
        with pytest.raises(GrantError):
            grants.revoke_all_for(5)
