"""Tests for generator-based simulation processes."""

import pytest

from repro.sim import Interrupt, PendingInterrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield 5.0
        return "result"

    proc = sim.process(worker())
    assert sim.run(until=proc) == "result"
    assert sim.now == 5.0


def test_process_yield_number_is_timeout():
    sim = Simulator()
    times = []

    def worker():
        yield 1
        times.append(sim.now)
        yield 2.5
        times.append(sim.now)

    sim.process(worker())
    sim.run()
    assert times == [1.0, 3.5]


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        value = yield sim.timeout(1.0, value="hello")
        return value

    proc = sim.process(worker())
    assert sim.run(until=proc) == "hello"


def test_process_joins_another_process():
    sim = Simulator()

    def child():
        yield 3.0
        return 7

    def parent():
        result = yield sim.process(child())
        return result * 2

    proc = sim.process(parent())
    assert sim.run(until=proc) == 14
    assert sim.now == 3.0


def test_failed_event_raises_inside_process():
    sim = Simulator()

    def worker():
        evt = sim.event()
        sim.schedule(1.0, evt.fail, KeyError("nope"))
        try:
            yield evt
        except KeyError:
            return "caught"

    proc = sim.process(worker())
    assert sim.run(until=proc) == "caught"


def test_uncaught_process_exception_propagates():
    sim = Simulator()

    def worker():
        yield 1.0
        raise ValueError("kaput")

    proc = sim.process(worker())
    with pytest.raises(ValueError, match="kaput"):
        sim.run(until=proc)


def test_yield_garbage_fails_process():
    sim = Simulator()

    def worker():
        yield "not an event"

    proc = sim.process(worker())
    with pytest.raises(TypeError):
        sim.run(until=proc)


def test_is_alive_lifecycle():
    sim = Simulator()

    def worker():
        yield 2.0

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield 10.0
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(10.0, "wake up")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield 1.0

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_wait_event_becomes_stale():
    """After an interrupt, the originally awaited event must not resume
    the process a second time."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0, value="timeout fired")
        except Interrupt:
            resumes.append("interrupted")
        yield 20.0
        resumes.append("slept on")

    proc = sim.process(sleeper())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert resumes == ["interrupted", "slept on"]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_two_processes_interleave():
    sim = Simulator()
    order = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            order.append((name, sim.now))

    sim.process(ticker("a", 1.0))
    sim.process(ticker("b", 1.5))
    sim.run()
    # At t=3.0 both tick; b's timeout entered the queue earlier (at t=1.5
    # vs t=2.0), so FIFO order within the timestamp puts b first.
    assert order == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                     ("a", 3.0), ("b", 4.5)]


# ---------------------------------------------------------------------------
# Process-lifecycle regression tests
# ---------------------------------------------------------------------------

def test_cross_simulator_yield_closes_generator():
    """Yielding an event from another simulator fails the process AND
    closes its generator, so ``finally`` cleanup in the guest body runs
    (the seed kernel failed the process with the generator left open)."""
    sim = Simulator()
    other = Simulator()
    cleaned = []

    def worker():
        try:
            yield other.timeout(1.0)
        finally:
            cleaned.append("cleanup ran")

    proc = sim.process(worker())
    with pytest.raises(ValueError, match="another simulator"):
        sim.run(until=proc)
    assert cleaned == ["cleanup ran"]
    assert not proc.is_alive


def test_interrupt_detaches_interned_continuation():
    """Interrupting a process parked in an event's continuation slot
    clears the slot; re-waiting re-interns it.  Nothing accumulates."""
    sim = Simulator()
    gate = sim.event()
    interrupts = []

    def sleeper():
        while True:
            try:
                yield gate
            except Interrupt:
                interrupts.append(sim.now)

    proc = sim.process(sleeper())
    sim.run()
    assert gate._cont is proc
    for _ in range(50):
        proc.interrupt()
        sim.run()
    assert len(interrupts) == 50
    # Still exactly one parked waiter, and no dead callbacks left behind.
    assert gate._cont is proc
    assert gate.callbacks == []


def test_interrupt_detaches_stale_resume_callback():
    """When the process sits on the callback *list* (another subscriber
    got there first), interrupt removes its resume hook: a long-lived
    shared event repeatedly waited-on and interrupted must not accumulate
    dead callbacks (the seed kernel leaked one per interrupt)."""
    sim = Simulator()
    gate = sim.event()
    gate.add_callback(lambda _event: None)  # occupy the first slot

    def sleeper():
        while True:
            try:
                yield gate
            except Interrupt:
                pass

    proc = sim.process(sleeper())
    sim.run()
    assert gate._cont is None
    assert len(gate.callbacks) == 2  # the sink + the parked process
    for _ in range(50):
        proc.interrupt()
        sim.run()
    assert len(gate.callbacks) == 2


def test_second_interrupt_before_delivery_is_rejected():
    """Two interrupts before the first kick fires: the first wins, the
    second raises PendingInterrupt instead of silently replacing it."""
    sim = Simulator()
    causes = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as intr:
            causes.append(intr.cause)

    proc = sim.process(sleeper())
    sim.run(until=1.0)  # parked on its timeout now
    proc.interrupt("first")
    with pytest.raises(PendingInterrupt):
        proc.interrupt("second")
    sim.run()
    assert causes == ["first"]


def test_interrupt_before_first_resume_kills_process():
    """An interrupt landing before the bootstrap delivers detaches the
    bootstrap and throws into the never-started generator, failing the
    process with the Interrupt."""
    sim = Simulator()

    def worker():
        yield 1.0  # never reached

    proc = sim.process(worker())
    proc.interrupt("early")
    with pytest.raises(Interrupt):
        sim.run(until=proc)
    assert not proc.is_alive


def test_double_interrupt_before_first_resume_rejected():
    sim = Simulator()

    def worker():
        yield 1.0  # never reached

    proc = sim.process(worker())
    proc.interrupt("early")
    with pytest.raises(PendingInterrupt):
        proc.interrupt("late")


def test_interrupt_after_delivery_is_accepted_again():
    """PendingInterrupt only guards the undelivered window: once the
    first interrupt has been thrown in, a new interrupt is fine."""
    sim = Simulator()
    causes = []

    def sleeper():
        while True:
            try:
                yield 100.0
            except Interrupt as intr:
                causes.append(intr.cause)

    proc = sim.process(sleeper())

    def interrupter():
        yield 10.0
        proc.interrupt("one")
        yield 10.0
        proc.interrupt("two")

    sim.process(interrupter())
    sim.run(until=50.0)
    assert causes == ["one", "two"]
