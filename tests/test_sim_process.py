"""Tests for generator-based simulation processes."""

import pytest

from repro.sim import Interrupt, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield 5.0
        return "result"

    proc = sim.process(worker())
    assert sim.run(until=proc) == "result"
    assert sim.now == 5.0


def test_process_yield_number_is_timeout():
    sim = Simulator()
    times = []

    def worker():
        yield 1
        times.append(sim.now)
        yield 2.5
        times.append(sim.now)

    sim.process(worker())
    sim.run()
    assert times == [1.0, 3.5]


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        value = yield sim.timeout(1.0, value="hello")
        return value

    proc = sim.process(worker())
    assert sim.run(until=proc) == "hello"


def test_process_joins_another_process():
    sim = Simulator()

    def child():
        yield 3.0
        return 7

    def parent():
        result = yield sim.process(child())
        return result * 2

    proc = sim.process(parent())
    assert sim.run(until=proc) == 14
    assert sim.now == 3.0


def test_failed_event_raises_inside_process():
    sim = Simulator()

    def worker():
        evt = sim.event()
        sim.schedule(1.0, evt.fail, KeyError("nope"))
        try:
            yield evt
        except KeyError:
            return "caught"

    proc = sim.process(worker())
    assert sim.run(until=proc) == "caught"


def test_uncaught_process_exception_propagates():
    sim = Simulator()

    def worker():
        yield 1.0
        raise ValueError("kaput")

    proc = sim.process(worker())
    with pytest.raises(ValueError, match="kaput"):
        sim.run(until=proc)


def test_yield_garbage_fails_process():
    sim = Simulator()

    def worker():
        yield "not an event"

    proc = sim.process(worker())
    with pytest.raises(TypeError):
        sim.run(until=proc)


def test_is_alive_lifecycle():
    sim = Simulator()

    def worker():
        yield 2.0

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield 10.0
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(10.0, "wake up")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield 1.0

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_wait_event_becomes_stale():
    """After an interrupt, the originally awaited event must not resume
    the process a second time."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0, value="timeout fired")
        except Interrupt:
            resumes.append("interrupted")
        yield 20.0
        resumes.append("slept on")

    proc = sim.process(sleeper())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert resumes == ["interrupted", "slept on"]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_two_processes_interleave():
    sim = Simulator()
    order = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            order.append((name, sim.now))

    sim.process(ticker("a", 1.0))
    sim.process(ticker("b", 1.5))
    sim.run()
    # At t=3.0 both tick; b's timeout entered the queue earlier (at t=1.5
    # vs t=2.0), so FIFO order within the timestamp puts b first.
    assert order == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                     ("a", 3.0), ("b", 4.5)]
