"""Daemon crash/restart: op journal, watchdog, parked clients, shedding.

The XenStore daemon side of ``repro.recovery``: a ``daemon_crash`` fault
kills the daemon mid-op, the watchdog notices and replays the write-ahead
journal, open transactions are invalidated with ``DaemonRestarted``, and
a bounded admission queue sheds excess requests with ``Overloaded``.
"""

import pytest

from repro.core import Host
from repro.faults import DaemonRestarted, FaultPlan, Overloaded
from repro.guests import DAYTIME_UNIKERNEL
from repro.recovery import OpJournal, Watchdog
from repro.sim import Simulator
from repro.xenstore import XenStoreDaemon, XsClient


def drive(sim, gen):
    """Run one generator to completion; return its value."""
    result = []

    def runner():
        result.append((yield from gen))
    sim.run(until=sim.process(runner()))
    return result[0]


def crash_host(occurrence=30, seed=0, **kwargs):
    return Host(variant="chaos+xs", seed=seed,
                fault_plan=FaultPlan.once("xenstore.daemon_crash",
                                          occurrence=occurrence,
                                          kind="crash", seed=seed),
                recovery=True, **kwargs)


class TestCrashRestart:
    def test_crash_mid_storm_recovers_every_guest(self):
        host = crash_host()
        for _ in range(6):
            host.create_vm(DAYTIME_UNIKERNEL)
        host.sim.run(until=host.sim.now + 500.0)
        xs = host.xenstore
        assert xs.stats["crashes"] == 1
        assert xs.stats["restarts"] == 1
        assert xs.stats["replayed"] > 0
        assert not xs.crashed
        assert host.running_guests == 6
        assert host.check_invariants() == []

    def test_watchdog_counts_detections_and_reports_health(self):
        host = crash_host()
        for _ in range(6):
            host.create_vm(DAYTIME_UNIKERNEL)
        host.sim.run(until=host.sim.now + 500.0)
        watchdog = host.recovery.watchdog
        assert watchdog.detections == 1
        health = watchdog.health()
        assert health["up"] is True
        assert health["epoch"] == 1
        assert health["crashes"] == 1
        assert health["restarts"] == 1
        assert health["journal_entries"] > 0

    def test_restart_charges_downtime_on_the_timeline(self):
        timings = {}
        for label, occurrence in (("calm", 10 ** 9), ("crashed", 30)):
            host = crash_host(occurrence=occurrence)
            for _ in range(6):
                host.create_vm(DAYTIME_UNIKERNEL)
            timings[label] = host.sim.now
        # Detection delay + restart downtime + replay must cost time.
        assert timings["crashed"] > timings["calm"]

    def test_crash_point_needs_recovery_layer(self):
        # Digest gating: without recovery=True the daemon_crash point is
        # never consulted, so a plan naming it changes nothing at all.
        digests = []
        for plan in (None, FaultPlan.once("xenstore.daemon_crash",
                                          occurrence=1)):
            from repro.analysis.sanitize import EventTrace
            sim = Simulator()
            trace = EventTrace().attach(sim)
            host = Host(variant="chaos+xs", seed=0, sim=sim,
                        fault_plan=plan)
            for _ in range(4):
                host.create_vm(DAYTIME_UNIKERNEL)
            sim.run(until=sim.now + 500.0)
            assert host.xenstore.stats["crashes"] == 0
            digests.append(trace.digest())
        assert digests[0] == digests[1]


class TestJournalReplay:
    def _daemon(self):
        sim = Simulator()
        daemon = XenStoreDaemon(sim, rng=None)
        daemon.attach_journal(OpJournal())
        return sim, daemon

    def test_replay_rebuilds_tree_quota_and_ambient(self):
        sim, daemon = self._daemon()
        client = XsClient(daemon).for_domain(1)
        drive(sim, client.write("/local/domain/1/name", "guest"))
        drive(sim, client.mkdir("/local/domain/1/device"))
        drive(sim, client.write("/local/domain/1/device/vif", "0"))
        drive(sim, client.rm("/local/domain/1/device/vif"))
        daemon.register_client(1.0)
        daemon.register_client(0.5)
        daemon.unregister_client(0.5)
        counts_before = dict(daemon._node_counts)
        ambient_before = daemon.ambient_clients

        daemon._crash()
        daemon.tree = None  # replay must not depend on the dead tree
        drive(sim, daemon.restart())

        assert drive(sim, client.read("/local/domain/1/name")) == "guest"
        assert not drive(sim, XsClient(daemon).directory(
            "/local/domain/1/device"))
        assert daemon._node_counts == counts_before
        assert daemon.ambient_clients == ambient_before
        assert not daemon.crashed

    def test_open_transaction_invalidated_by_crash(self):
        sim, daemon = self._daemon()
        tx = drive(sim, daemon.transaction_start(0))
        daemon._crash()
        drive(sim, daemon.restart())
        with pytest.raises(DaemonRestarted):
            drive(sim, daemon.txn_write(tx, "/stale", "x"))

    def test_request_during_downtime_parks_until_restart(self):
        sim, daemon = self._daemon()
        client = XsClient(daemon)
        daemon._crash()
        watchdog = Watchdog(sim, daemon)

        log = []

        def writer():
            yield from client.write("/after", "restart")
            log.append(sim.now)

        sim.process(writer())
        sim.run(until=sim.now + 1.0)
        assert log == []  # parked: the daemon is down
        drive(sim, daemon.restart())
        sim.run(until=sim.now + 10.0)
        assert log and drive(sim, client.read("/after")) == "restart"
        assert watchdog.detections == 0  # armed late: nothing to do


class TestAdmissionControl:
    def test_zero_cap_sheds_with_typed_overloaded(self):
        sim = Simulator()
        daemon = XenStoreDaemon(sim, rng=None, queue_cap=0)
        client = XsClient(daemon)
        with pytest.raises(Overloaded):
            drive(sim, client.write("/nope", "1"))
        assert daemon.stats["shed"] == 1

    def test_transaction_backs_off_then_surfaces_overloaded(self):
        sim = Simulator()
        daemon = XenStoreDaemon(sim, rng=None, queue_cap=0)
        client = XsClient(daemon)

        def body(txn):
            txn.write("/t", "1")
            yield from ()

        start = sim.now
        with pytest.raises(Overloaded):
            drive(sim, client.transaction(body))
        assert sim.now > start  # backed off between shed attempts
        assert daemon.stats["shed"] > 1

    def test_uncapped_daemon_never_sheds(self):
        host = Host(variant="chaos+xs", seed=0)
        for _ in range(8):
            host.create_vm(DAYTIME_UNIKERNEL)
        assert host.xenstore.stats["shed"] == 0
