"""ScenarioSpec validation: strict keys, typed errors, canonical digest."""

import copy

import pytest

from repro.stdlib import (ComponentError, MissingSpecKeyError,
                          ScenarioSpec, SpecTypeError,
                          UnknownSpecKeyError, loads)
from repro.stdlib.presets import BOOT_STORM

HOST_SPEC = {
    "name": "smoke",
    "mode": "host",
    "host": "lightvm@1",
    "guest": "daytime@1",
    "traffic": "boot-storm@1",
    "faults": "none@1",
    "guests": 8,
}


class TestValidation:
    def test_minimal_host_spec_parses(self):
        spec = ScenarioSpec.from_dict(HOST_SPEC)
        assert spec.name == "smoke"
        assert spec.mode == "host"
        assert spec.guests == 8
        assert spec.hosts == 1
        assert spec.host.variant == "lightvm"

    def test_faults_defaults_to_none_at_1(self):
        payload = dict(HOST_SPEC)
        del payload["faults"]
        spec = ScenarioSpec.from_dict(payload)
        assert spec.faults.ref() == "none@1"
        assert spec.faults.rate == 0.0

    def test_unknown_key_rejected_with_suggestion(self):
        payload = dict(HOST_SPEC, guets=8)
        with pytest.raises(UnknownSpecKeyError) as err:
            ScenarioSpec.from_dict(payload)
        assert err.value.field == "guets"
        assert "unknown key 'guets'" in str(err.value)
        assert "did you mean 'guests'?" in str(err.value)

    def test_cluster_only_key_in_host_mode_names_the_mode(self):
        payload = dict(HOST_SPEC, hosts=4)
        with pytest.raises(UnknownSpecKeyError) as err:
            ScenarioSpec.from_dict(payload)
        assert err.value.field == "hosts"
        assert "only valid in mode 'cluster'" in str(err.value)

    def test_missing_required_key_named(self):
        payload = dict(HOST_SPEC)
        del payload["traffic"]
        with pytest.raises(MissingSpecKeyError) as err:
            ScenarioSpec.from_dict(payload)
        assert err.value.field == "traffic"
        assert "missing required key 'traffic'" in str(err.value)

    def test_cluster_mode_requires_placement_and_topology(self):
        payload = dict(BOOT_STORM)
        del payload["placement"]
        with pytest.raises(MissingSpecKeyError) as err:
            ScenarioSpec.from_dict(payload)
        assert err.value.field == "placement"

    def test_bad_mode_is_typed(self):
        with pytest.raises(SpecTypeError) as err:
            ScenarioSpec.from_dict(dict(HOST_SPEC, mode="fleet"))
        assert err.value.field == "mode"
        assert "expected one of host, cluster" in str(err.value)

    def test_workload_scalars_type_checked(self):
        for key, value in (("guests", 0), ("guests", "many"),
                           ("guests", True)):
            with pytest.raises(SpecTypeError) as err:
                ScenarioSpec.from_dict(dict(HOST_SPEC, **{key: value}))
            assert err.value.field == key
            assert "positive integer" in str(err.value)

    def test_negative_requests_rejected(self):
        payload = dict(BOOT_STORM, requests=-1)
        with pytest.raises(SpecTypeError) as err:
            ScenarioSpec.from_dict(payload)
        assert err.value.field == "requests"
        assert "non-negative integer" in str(err.value)

    def test_empty_name_rejected(self):
        with pytest.raises(SpecTypeError) as err:
            ScenarioSpec.from_dict(dict(HOST_SPEC, name=""))
        assert err.value.field == "name"

    def test_component_errors_carry_the_spec_field(self):
        with pytest.raises(ComponentError) as err:
            ScenarioSpec.from_dict(dict(HOST_SPEC, guest="daytme@1"))
        assert err.value.field == "guest"

    def test_version_mismatch_names_the_field(self):
        with pytest.raises(ComponentError) as err:
            ScenarioSpec.from_dict(dict(HOST_SPEC, host="lightvm@2"))
        assert err.value.field == "host"
        assert "no version 2" in str(err.value)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(SpecTypeError):
            ScenarioSpec.from_dict(["not", "a", "mapping"])  # type: ignore[arg-type]


class TestCanonicalForm:
    def test_digest_is_stable_across_source_spelling(self):
        # The digest hashes the *resolved* spec: a reference with a
        # no-op override mapping digests the same as the plain string.
        plain = ScenarioSpec.from_dict(HOST_SPEC)
        spelled = ScenarioSpec.from_dict(
            dict(HOST_SPEC, host={"ref": "lightvm@1"}))
        assert plain.digest() == spelled.digest()

    def test_digest_moves_with_overrides(self):
        plain = ScenarioSpec.from_dict(HOST_SPEC)
        tuned = ScenarioSpec.from_dict(
            dict(HOST_SPEC, host={"ref": "lightvm@1", "pool_slack": 8}))
        assert plain.digest() != tuned.digest()

    def test_canonical_embeds_resolved_components(self):
        record = ScenarioSpec.from_dict(HOST_SPEC).canonical()
        assert record["components"]["host"]["variant"] == "lightvm"
        assert record["components"]["faults"]["rate"] == 0.0
        assert "placement" not in record["components"]

    def test_source_round_trips(self):
        spec = ScenarioSpec.from_dict(HOST_SPEC)
        again = ScenarioSpec.from_dict(spec.source)
        assert again.digest() == spec.digest()


class TestClusterLowering:
    def test_boot_storm_preset_lowers_to_config_defaults(self):
        from repro.cluster.config import ClusterConfig
        config = ScenarioSpec.from_dict(BOOT_STORM).to_cluster_config(7)
        assert config == ClusterConfig(hosts=8, seed=7,
                                       scenario="boot-storm", guests=32)

    def test_host_mode_spec_refuses_cluster_lowering(self):
        with pytest.raises(SpecTypeError) as err:
            ScenarioSpec.from_dict(HOST_SPEC).to_cluster_config(0)
        assert "only cluster-mode specs" in str(err.value)

    def test_topology_and_traffic_knobs_reach_the_config(self):
        payload = copy.deepcopy(BOOT_STORM)
        payload["topology"] = {"ref": "lan@1", "epoch_ms": 4.0}
        payload["traffic"] = {"ref": "boot-storm@1",
                              "create_spacing_ms": 7.0}
        config = ScenarioSpec.from_dict(payload).to_cluster_config(0)
        assert config.epoch_ms == 4.0
        assert config.create_spacing_ms == 7.0


class TestDocumentLoading:
    def test_yaml_document_parses(self):
        spec = loads(
            "name: y\nmode: host\nhost: lightvm@1\nguest: daytime@1\n"
            "traffic: boot-storm@1\nguests: 4\n")
        assert spec.name == "y"

    def test_json_document_parses(self):
        import json
        spec = loads(json.dumps(HOST_SPEC), format="json")
        assert spec.digest() == ScenarioSpec.from_dict(HOST_SPEC).digest()

    def test_non_mapping_document_rejected(self):
        with pytest.raises(SpecTypeError) as err:
            loads("- just\n- a\n- list\n")
        assert "must be a mapping" in str(err.value)

    def test_committed_examples_parse(self):
        import pathlib
        from repro.stdlib import load_spec
        root = pathlib.Path(__file__).resolve().parent.parent
        for name in ("boot_storm.yaml", "fig10_density.yaml",
                     "migration_churn.yaml"):
            spec = load_spec(root / "examples" / name)
            assert spec.digest()
