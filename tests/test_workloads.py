"""Tests for the reusable workload drivers."""

import pytest

from repro.core.workloads import (boot_storm, checkpoint_sweep,
                                  pause_density)
from repro.core.hostspec import XEON_E5_1630_2DOM0
from repro.guests import DAYTIME_UNIKERNEL, TINYX


class TestBootStorm:
    def test_returns_per_vm_timings(self):
        result = boot_storm("lightvm", DAYTIME_UNIKERNEL, 20)
        assert len(result.create_ms) == 20
        assert len(result.boot_ms) == 20
        assert result.host.running_guests == 20
        assert all(t > 0 for t in result.total_ms)

    def test_no_boot_mode(self):
        result = boot_storm("chaos+noxs", DAYTIME_UNIKERNEL, 5,
                            boot=False)
        assert all(b == 0 for b in result.boot_ms)

    def test_cold_start_slower_for_split(self):
        warm = boot_storm("lightvm", DAYTIME_UNIKERNEL, 5)
        cold = boot_storm("lightvm", DAYTIME_UNIKERNEL, 5,
                          warmup_ms_per_shell=0)
        assert cold.create_ms[0] > warm.create_ms[0]

    def test_variant_recorded(self):
        result = boot_storm("xl", DAYTIME_UNIKERNEL, 3)
        assert result.variant == "xl"
        assert result.image == "daytime"


class TestCheckpointSweep:
    def test_sweep_shape(self):
        result = checkpoint_sweep("lightvm", DAYTIME_UNIKERNEL,
                                  points=(5, 15), samples_per_point=3,
                                  spec=XEON_E5_1630_2DOM0)
        assert result.points == [5, 15]
        assert len(result.save_ms) == 2
        assert all(s > 0 for s in result.save_ms)
        assert all(r > 0 for r in result.restore_ms)

    def test_lightvm_flat_over_points(self):
        result = checkpoint_sweep("lightvm", DAYTIME_UNIKERNEL,
                                  points=(5, 25), samples_per_point=3,
                                  spec=XEON_E5_1630_2DOM0)
        assert result.save_ms[1] == pytest.approx(result.save_ms[0],
                                                  rel=0.3)


class TestPauseDensity:
    def test_pausing_releases_cpu(self):
        result = pause_density(TINYX, fleet=30, pause_fraction=0.5)
        assert result.paused == 15
        assert result.utilization_after < result.utilization_before

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            pause_density(TINYX, fleet=5, pause_fraction=1.5)

    def test_zero_fraction_noop(self):
        result = pause_density(TINYX, fleet=10, pause_fraction=0.0)
        assert result.paused == 0
