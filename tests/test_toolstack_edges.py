"""Edge cases across the toolstack: split internals, chaos validation,
migration preconditions, checkpointer dispatch."""

import pytest

from repro.core import Host, XEON_E5_1630_2DOM0
from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL
from repro.hypervisor import DomainState, Hypervisor
from repro.noxs import NoxsModule, SysctlBackend
from repro.sim import Simulator
from repro.toolstack import ChaosToolstack, VMConfig
from repro.xenstore import XenStoreDaemon


class TestChaosValidation:
    def _platform(self):
        sim = Simulator()
        hv = Hypervisor(sim, memory_kb=8 * 1024 * 1024, total_cores=4,
                        dom0_cores=1, dom0_memory_kb=64 * 1024)
        return sim, hv

    def test_requires_exactly_one_control_plane(self):
        sim, hv = self._platform()
        with pytest.raises(ValueError):
            ChaosToolstack(sim, hv)  # neither
        xs = XenStoreDaemon(sim)
        noxs = NoxsModule(sim, hv)
        with pytest.raises(ValueError):
            ChaosToolstack(sim, hv, xenstore=xs, noxs=noxs)  # both

    def test_noxs_requires_sysctl(self):
        sim, hv = self._platform()
        with pytest.raises(ValueError):
            ChaosToolstack(sim, hv, noxs=NoxsModule(sim, hv))

    def test_bad_mac_rejected(self):
        host = Host(variant="chaos+noxs")
        config = host.config_for(DAYTIME_UNIKERNEL)
        config.vifs[0]["mac"] = "zz:not:a:mac"
        with pytest.raises(ValueError):
            host.create_vm(config)


class TestSplitExecuteInternals:
    def test_shell_resized_to_requested_memory(self):
        host = Host(variant="lightvm", shell_memory_kb=4096)
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)  # wants 3686 KiB
        assert record.domain.memory_kb == DAYTIME_UNIKERNEL.memory_kb
        assert host.hypervisor.memory.owned_kb(
            record.domain.domid) == DAYTIME_UNIKERNEL.memory_kb

    def test_prepared_device_is_consumed(self):
        host = Host(variant="lightvm", shell_vifs=1)
        host.warmup(500)
        before = host.noxs.stats["devices_created"]
        host.create_vm(DAYTIME_UNIKERNEL)
        # The vif came from the shell's prepared stock; only the sysctl
        # device was created at execute time.
        created_at_execute = host.noxs.stats["devices_created"] - before
        assert created_at_execute <= 1

    def test_noop_needs_no_vif_but_shell_has_one(self):
        """A shell prepared with one vif still serves a no-device image
        (the spare device entry is simply not installed)."""
        host = Host(variant="lightvm", shell_vifs=1)
        host.warmup(500)
        record = host.create_vm(NOOP_UNIKERNEL)
        types = [e.dev_type for _i, e in
                 record.domain.device_page.entries()]
        from repro.hypervisor import DEV_SYSCTL
        assert types == [DEV_SYSCTL]


class TestXsSplitInternals:
    def test_execute_phase_writes_only_leaves(self):
        host = Host(variant="chaos+xs+split")
        host.warmup(1500)
        ops_before = host.xenstore.stats["ops"]
        host.create_vm(DAYTIME_UNIKERNEL)
        execute_ops = host.xenstore.stats["ops"] - ops_before
        # Far fewer ops than a full unsplit creation (~20+).
        assert execute_ops < 18

    def test_guest_boots_from_prepared_skeleton(self):
        host = Host(variant="chaos+xs+split")
        host.warmup(1500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert record.boot_ms > 0
        front = "/local/domain/%d/device/vif/0/state" % record.domain.domid
        assert host.xenstore.tree.read(front) == "connected"


class TestCheckpointerDispatch:
    def test_chaos_xs_save_uses_control_node(self):
        host = Host(spec=XEON_E5_1630_2DOM0, variant="chaos+xs")
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        host.save_vm(record.domain, config)
        # The suspend request went through the XenStore control node.
        assert host.xenstore.tree.write_count > 0

    def test_save_requires_running_guest_on_noxs(self):
        host = Host(spec=XEON_E5_1630_2DOM0, variant="lightvm")
        host.warmup(500)
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config, boot=False)  # CREATED, not RUNNING
        with pytest.raises(Exception):
            host.save_vm(record.domain, config)

    def test_restored_guest_usable_for_second_save(self):
        host = Host(spec=XEON_E5_1630_2DOM0, variant="lightvm")
        host.warmup(500)
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        saved = host.save_vm(record.domain, config)
        domain = host.restore_vm(saved)
        saved2 = host.save_vm(domain, config)
        domain2 = host.restore_vm(saved2)
        assert domain2.state == DomainState.RUNNING


class TestSysctlLifecycle:
    def test_attach_is_part_of_noxs_create(self):
        host = Host(variant="chaos+noxs")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        assert SysctlBackend.NOTE_KEY in record.domain.notes

    def test_destroy_tears_down_sysctl_device(self):
        host = Host(variant="chaos+noxs")
        record = host.create_vm(DAYTIME_UNIKERNEL)
        destroyed_before = host.noxs.stats["devices_destroyed"]
        host.destroy_vm(record.domain)
        assert host.noxs.stats["devices_destroyed"] >= destroyed_before + 2


class TestConfigRoundTripThroughCreate:
    def test_parsed_config_creates_identical_vm(self):
        from repro.toolstack import parse_config_text
        host = Host(variant="chaos+noxs")
        original = host.config_for(DAYTIME_UNIKERNEL)
        reparsed = parse_config_text(original.render())
        record = host.create_vm(reparsed)
        assert record.domain.memory_kb // 1024 == \
            original.memory_kb // 1024
        assert record.domain.device_page.count == 2  # vif + sysctl
