"""Tests for metrics helpers and the Figure 1 dataset."""

import pytest

from repro.core.metrics import (cdf_points, format_series, mean, median,
                                percentile, sample_indices)
from repro.data import SYSCALL_HISTORY, counts_by_year, growth_per_year


class TestPercentiles:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_p0_and_p100(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_p90(self):
        values = list(range(1, 101))
        assert percentile(values, 90) == pytest.approx(90.1)

    def test_single_value(self):
        assert percentile([7], 33) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            mean([])

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_mean(self):
        assert mean([1, 2, 3]) == 2


class TestCdf:
    def test_cdf_reaches_one(self):
        points = cdf_points([4, 1, 3, 2])
        assert points[-1][1] == 1.0
        assert points[-1][0] == 4

    def test_cdf_monotone(self):
        points = cdf_points(list(range(100)), points=10)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_single_value(self):
        assert cdf_points([7.5]) == [(7.5, 1.0)]

    def test_two_values(self):
        assert cdf_points([2.0, 1.0]) == [(1.0, 0.5), (2.0, 1.0)]

    def test_two_equal_values_collapse(self):
        """Duplicates map to one point at the full cumulative fraction."""
        assert cdf_points([3.0, 3.0]) == [(3.0, 1.0)]

    def test_duplicated_value_reports_full_fraction(self):
        """P(X <= v) counts every copy of v, not the sampled copy's rank."""
        points = cdf_points([1.0, 2.0, 2.0, 2.0])
        assert points == [(1.0, 0.25), (2.0, 1.0)]

    def test_duplicated_maximum_after_subsampling(self):
        """A subsample landing on an early copy of the maximum must not
        emit a fraction below 1.0 for it."""
        values = list(range(50)) + [49.0] * 50
        points = cdf_points(values, points=10)
        xs = [x for x, _f in points]
        assert xs == sorted(set(xs))  # strictly increasing
        assert points[-1] == (49.0, 1.0)
        # The maximum appears exactly once, at fraction 1.0.
        assert [f for x, f in points if x == 49.0] == [1.0]

    def test_values_strictly_increasing(self):
        points = cdf_points([5, 5, 1, 1, 3, 3, 3], points=50)
        xs = [x for x, _f in points]
        assert xs == sorted(set(xs))
        assert points == [(1, 2 / 7), (3, 5 / 7), (5, 1.0)]


class TestSampling:
    def test_includes_endpoints(self):
        indices = sample_indices(1000, 5)
        assert indices[0] == 0
        assert indices[-1] == 999

    def test_small_total_returns_all(self):
        assert sample_indices(3, 10) == [0, 1, 2]

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            sample_indices(0, 5)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            sample_indices(10, 0)
        with pytest.raises(ValueError):
            sample_indices(10, -3)

    def test_single_sample_pins_to_start(self):
        """samples == 1 used to divide by zero; it pins to index 0."""
        assert sample_indices(1000, 1) == [0]
        assert sample_indices(1, 1) == [0]

    def test_two_samples_cover_endpoints(self):
        assert sample_indices(1000, 2) == [0, 999]

    def test_two_value_percentiles(self):
        """n == 2 interpolates linearly between the two order statistics."""
        assert percentile([10.0, 20.0], 0) == 10.0
        assert percentile([10.0, 20.0], 50) == 15.0
        assert percentile([10.0, 20.0], 90) == pytest.approx(19.0)
        assert percentile([10.0, 20.0], 100) == 20.0


class TestFormatSeries:
    def test_contains_all_series_and_rows(self):
        text = format_series("T", [1, 2], {"a": [0.5, 1.5],
                                           "b": [2.5, 3.5]})
        assert "T" in text
        assert "a" in text and "b" in text
        assert "0.500" in text and "3.500" in text


class TestSyscallData:
    def test_span_matches_figure_axes(self):
        """Fig 1: x from 2002 to ~2018, y from ~200 to ~400."""
        years = [y for y, _c in counts_by_year()]
        counts = [c for _y, c in counts_by_year()]
        assert min(years) == 2002
        assert max(years) >= 2016
        assert 200 <= min(counts) <= 260
        assert 350 <= max(counts) <= 400

    def test_monotone_growth(self):
        counts = [c for _y, c in counts_by_year()]
        assert counts == sorted(counts)

    def test_releases_recorded(self):
        assert any(release.startswith("4.") for _y, release, _c
                   in SYSCALL_HISTORY)

    def test_growth_rate_positive(self):
        assert 5 <= growth_per_year() <= 15
