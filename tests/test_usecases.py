"""Tests for the four §7 use cases (small-scale runs)."""

import pytest

from repro.core.metrics import median, percentile
from repro.core.usecases import (run_compute_service, run_jit_service,
                                 run_personal_firewalls,
                                 run_tls_termination)


class TestFirewalls:
    @pytest.fixture(scope="class")
    def result(self):
        return run_personal_firewalls(client_counts=(1, 250, 500, 1000),
                                      boot_fleet=60)

    def test_fleet_boots(self, result):
        assert result.booted == 60

    def test_boot_sample_around_10ms(self, result):
        """§7.1: booting one ClickOS firewall takes about 10 ms."""
        assert result.boot_sample_ms == pytest.approx(10.0, abs=5.0)

    def test_throughput_knee(self, result):
        by_n = {p.clients: p for p in result.points}
        assert not by_n[1].saturated
        assert by_n[1000].saturated
        assert by_n[1000].total_gbps > by_n[500].total_gbps

    def test_migration_estimate_band(self, result):
        """§7.1: ~150 ms over a 1 Gb/s, 10 ms link."""
        assert result.migration_ms == pytest.approx(150.0, abs=60.0)


class TestJit:
    def test_clean_curve_at_slow_arrivals(self):
        result = run_jit_service(25.0, clients=120)
        assert median(result.rtts) == pytest.approx(13.0, abs=4.0)
        assert percentile(result.rtts, 90) < 40.0
        assert result.retried == 0

    def test_overload_at_fast_arrivals(self):
        result = run_jit_service(10.0, clients=120)
        assert result.bridge_drops > 0
        assert result.retried > 0
        assert percentile(result.rtts, 99) > 500.0

    def test_all_clients_answered(self):
        result = run_jit_service(50.0, clients=50)
        assert len(result.rtts) == 50

    def test_deterministic_given_seed(self):
        a = run_jit_service(25.0, clients=40, seed=3)
        b = run_jit_service(25.0, clients=40, seed=3)
        assert a.rtts == b.rtts


class TestTlsTermination:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tls_termination(instance_counts=(1, 100, 1000))

    def test_boot_times(self, result):
        """§7.3: unikernel ~6 ms, Tinyx ~190 ms."""
        assert result.unikernel_boot_ms < 10.0
        assert result.tinyx_boot_ms == pytest.approx(190.0, abs=40.0)

    def test_tinyx_matches_bare_metal(self, result):
        tinyx = result.series["tinyx"][-1].requests_per_s
        bare = result.series["bare-metal"][-1].requests_per_s
        assert tinyx == pytest.approx(bare, rel=0.1)

    def test_unikernel_a_fifth(self, result):
        tinyx = result.series["tinyx"][-1].requests_per_s
        uni = result.series["unikernel"][-1].requests_per_s
        assert uni == pytest.approx(tinyx / 5, rel=0.15)


class TestComputeService:
    def test_backlog_grows_under_overload(self):
        result = run_compute_service("lightvm", requests=120)
        assert result.service_ms[0] < result.service_ms[-1]
        peak = max(count for _t, count in result.concurrency)
        assert peak > 3  # more than the core count: genuinely backlogged

    def test_split_toolstack_creations_fast_and_flat(self):
        result = run_compute_service("lightvm", requests=120)
        later = [c for c in result.create_ms[60:] if c > 0]
        assert max(later) < 5.0

    def test_xenstore_variant_creations_slower(self):
        lightvm = run_compute_service("lightvm", requests=100)
        chaos_xs = run_compute_service("chaos+xs", requests=100)
        assert (median(chaos_xs.create_ms)
                > median(lightvm.create_ms) * 2)

    def test_noxs_completions_no_worse(self):
        lightvm = run_compute_service("lightvm", requests=100)
        chaos_xs = run_compute_service("chaos+xs", requests=100)
        assert (sum(lightvm.service_ms)
                <= sum(chaos_xs.service_ms) * 1.05)

    def test_concurrency_timeline_recorded(self):
        result = run_compute_service("lightvm", requests=60)
        assert len(result.concurrency) > 5
        times = [t for t, _c in result.concurrency]
        assert times == sorted(times)
