"""Failure injection: the platform must fail loudly and cleanly."""

import dataclasses

import pytest

from repro.core import Host, HostSpec
from repro.guests import DAYTIME_UNIKERNEL, DEBIAN
from repro.hypervisor import (DevicePageError, DomainState,
                              OutOfMemoryError)
from repro.toolstack import VMConfig


class TestMemoryExhaustion:
    def test_vm_creation_fails_on_oom(self):
        tiny = HostSpec(name="tiny", cores=4, memory_gb=2, dom0_cores=1)
        host = Host(spec=tiny, variant="chaos+noxs")
        with pytest.raises(OutOfMemoryError):
            for _ in range(20):
                host.create_vm(DEBIAN)

    def test_oom_leaves_earlier_guests_intact(self):
        tiny = HostSpec(name="tiny", cores=4, memory_gb=2, dom0_cores=1)
        host = Host(spec=tiny, variant="chaos+noxs")
        survivors = []
        with pytest.raises(OutOfMemoryError):
            for _ in range(20):
                survivors.append(host.create_vm(DEBIAN).domain)
        assert survivors  # at least one booted before the wall
        assert all(d.state == DomainState.RUNNING for d in survivors)

    def test_memory_recoverable_after_oom(self):
        tiny = HostSpec(name="tiny", cores=4, memory_gb=2, dom0_cores=1)
        host = Host(spec=tiny, variant="chaos+noxs")
        survivors = []
        with pytest.raises(OutOfMemoryError):
            for _ in range(20):
                survivors.append(host.create_vm(DEBIAN).domain)
        host.destroy_vm(survivors[0])
        record = host.create_vm(DAYTIME_UNIKERNEL)  # fits again
        assert record.domain.state == DomainState.RUNNING


class TestNameCollisions:
    def test_duplicate_name_rejected_by_xl(self):
        from repro.xenstore import DuplicateNameError
        host = Host(variant="xl")
        config_a = VMConfig.for_image(DAYTIME_UNIKERNEL, "twin")
        config_b = VMConfig.for_image(DAYTIME_UNIKERNEL, "twin")
        host.create_vm(config_a)
        with pytest.raises(DuplicateNameError):
            host.create_vm(config_b)

    def test_name_free_after_destroy(self):
        host = Host(variant="xl")
        config = VMConfig.for_image(DAYTIME_UNIKERNEL, "reused")
        record = host.create_vm(config)
        host.destroy_vm(record.domain)
        config2 = VMConfig.for_image(DAYTIME_UNIKERNEL, "reused")
        assert host.create_vm(config2).domain.state == DomainState.RUNNING

    def test_chaos_has_no_name_registry(self):
        """chaos skips the name check entirely (it is XenStore work)."""
        host = Host(variant="chaos+noxs")
        config_a = VMConfig.for_image(DAYTIME_UNIKERNEL, "twin")
        config_b = VMConfig.for_image(DAYTIME_UNIKERNEL, "twin")
        host.create_vm(config_a)
        host.create_vm(config_b)  # no registry, no conflict
        assert host.running_guests == 2


class TestDevicePageLimits:
    def test_device_page_overflow_is_loud(self):
        many_vifs = dataclasses.replace(DAYTIME_UNIKERNEL, vifs=200)
        host = Host(variant="chaos+noxs")
        config = VMConfig.for_image(many_vifs, "porcupine")
        with pytest.raises(DevicePageError):
            host.create_vm(config)


class TestGuestCrash:
    def test_crash_reason_recorded_and_resources_freed(self):
        from repro.hypervisor import ShutdownReason
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        domain = record.domain
        host.hypervisor.domctl_shutdown(domain, ShutdownReason.CRASH)
        assert domain.state == DomainState.SHUTDOWN
        assert domain.shutdown_reason is ShutdownReason.CRASH
        assert domain.background_weight == 0.0
        host.destroy_vm(domain)
        assert host.running_guests == 0


class TestSuspendedGuestSafety:
    def test_cannot_run_work_on_suspended_domain(self):
        host = Host(variant="lightvm")
        host.warmup(500)
        config = host.config_for(DAYTIME_UNIKERNEL)
        record = host.create_vm(config)
        domain = record.domain
        proc = host.sim.process(
            host.toolstack.sysctl.request_suspend(domain))
        host.sim.run(until=proc)
        assert domain.state == DomainState.SUSPENDED
        with pytest.raises(Exception):
            proc2 = host.sim.process(
                host.toolstack.sysctl.request_suspend(domain))
            host.sim.run(until=proc2)


class TestBridgeOverloadRecovery:
    def test_bridge_recovers_when_load_subsides(self):
        from repro.net.switch import SoftwareBridge
        from repro.sim import RngStream, Simulator
        sim = Simulator()
        bridge = SoftwareBridge(sim, RngStream(0, "b"),
                                capacity_events_per_ms=0.05)
        # Hammer it: drops appear.
        for _ in range(100):
            bridge.arp_resolve()
        assert bridge.drops > 0
        # Let the window drain, then a lone request succeeds.
        sim.timeout(bridge.window_ms * 3)
        sim.run()
        assert bridge.arp_resolve()
