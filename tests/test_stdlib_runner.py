"""run_scenario: digests, series, and identity with the hand-coded paths."""

import pathlib

from repro.stdlib import (ScenarioSpec, load_spec, preset, run_scenario,
                          storm_spec)

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestVmStorm:
    def test_storm_counts_and_series(self):
        result = run_scenario(storm_spec("s", "lightvm@1", "daytime@1", 6))
        assert result.mode == "host"
        assert result.stats["booted"] == 6.0
        assert len(result.series["create_ms"]) == 6
        assert len(result.series["boot_ms"]) == 6
        assert result.events > 0
        assert result.host is None

    def test_keep_host_returns_live_host(self):
        result = run_scenario(storm_spec("s", "lightvm@1", "daytime@1", 4),
                              keep_host=True)
        assert result.host is not None
        assert result.host.running_guests == 4

    def test_digest_is_replay_stable(self):
        spec = storm_spec("s", "chaos+xs@1", "daytime@1", 5)
        assert run_scenario(spec, seed=3).digest == \
            run_scenario(spec, seed=3).digest

    def test_faulted_storm_absorbs_failures(self):
        spec = storm_spec("s", "lightvm@1", "daytime@1", 12,
                          faults={"ref": "heavy@1"})
        result = run_scenario(spec, seed=1)
        assert result.stats["booted"] + result.stats["create_failed"] \
            == 12.0

    def test_churn_keeps_working_set_resident(self):
        spec = storm_spec("s", "lightvm@1", "daytime@1", 12,
                          traffic={"ref": "churn@1",
                                   "churn_working_set": 4})
        result = run_scenario(spec, keep_host=True)
        assert result.stats["booted"] == 12.0
        assert result.host.running_guests <= 5

    def test_bursty_pattern_advances_between_bursts(self):
        base = storm_spec("s", "lightvm@1", "daytime@1", 8)
        bursty = storm_spec("s", "lightvm@1", "daytime@1", 8,
                            traffic={"ref": "bursty@1", "burst_size": 4,
                                     "burst_gap_ms": 100.0})
        assert run_scenario(bursty).sim_ms > run_scenario(base).sim_ms


class TestBaselineStorms:
    def test_container_storm_series(self):
        result = run_scenario(storm_spec("d", "xl@1", "docker@1", 10))
        assert result.stats["started"] == 10.0
        assert result.stats["died_at"] == -1.0
        assert len(result.series["start_ms"]) == 10

    def test_process_storm_series(self):
        result = run_scenario(storm_spec("p", "xl@1", "process@1", 10))
        assert result.stats["started"] == 10.0
        assert len(result.series["start_ms"]) == 10


class TestClusterMode:
    def test_cluster_preset_runs_and_digests(self):
        result = run_scenario(preset("boot-storm", hosts=2, guests=8),
                              seed=0)
        assert result.mode == "cluster"
        assert result.stats["booted"] == 8
        assert result.cluster is not None
        assert result.digest == result.cluster.digest

    def test_cluster_digest_matches_hand_coded_path(self):
        from repro.cluster import Cluster
        from repro.cluster.config import boot_storm
        spec = preset("boot-storm", hosts=2, guests=8)
        direct = Cluster(boot_storm(hosts=2, seed=5, guests=8),
                         backend="inline").run()
        assert run_scenario(spec, seed=5).digest == direct.digest


class TestHandCodedIdentity:
    """The acceptance pin: the committed fig10 scenario file reproduces
    the hand-coded benchmark storm digest byte-identically at the full
    n=8000 paper scale."""

    def test_fig10_yaml_matches_hand_coded_storm_at_n8000(self):
        from repro.analysis.sanitize import EventTrace
        from repro.core import AMD_OPTERON_64, Host
        from repro.guests import NOOP_UNIKERNEL
        from repro.sim import Simulator

        spec = load_spec(ROOT / "examples" / "fig10_density.yaml")
        assert spec.guests == 8000
        via_spec = run_scenario(spec, seed=0)

        # The benchmark's storm, verbatim (bench_fig10_density.py before
        # the stdlib migration), with a digest-neutral trace attached.
        sim = Simulator()
        trace = EventTrace().attach(sim)
        host = Host(spec=AMD_OPTERON_64, variant="lightvm", sim=sim,
                    pool_target=spec.guests + 64,
                    shell_memory_kb=NOOP_UNIKERNEL.memory_kb)
        host.warmup(12.0 * (spec.guests + 64))
        totals = [host.create_vm(NOOP_UNIKERNEL).total_ms
                  for _ in range(spec.guests)]

        assert via_spec.digest == trace.digest()
        assert via_spec.events == trace.events
        assert via_spec.series["total_ms"] == totals

    def test_fig09_spec_matches_hand_coded_storm(self):
        from repro.analysis.sanitize import EventTrace
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL
        from repro.sim import Simulator

        count = 40
        via_spec = run_scenario(
            storm_spec("fig09-xl", "xl@1", "daytime@1", count))

        sim = Simulator()
        trace = EventTrace().attach(sim)
        host = Host(variant="xl", sim=sim, pool_target=count + 64,
                    shell_memory_kb=DAYTIME_UNIKERNEL.memory_kb)
        host.warmup(20.0 * (count + 64))
        creates = [host.create_vm(DAYTIME_UNIKERNEL).create_ms
                   for _ in range(count)]

        assert via_spec.digest == trace.digest()
        assert via_spec.series["create_ms"] == creates

    def test_fig04_unpooled_spec_matches_bare_host(self):
        from repro.analysis.sanitize import EventTrace
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL
        from repro.sim import Simulator

        via_spec = run_scenario(
            storm_spec("fig04", {"ref": "xl@1", "pooled": False},
                       "daytime@1", 20))

        sim = Simulator()
        trace = EventTrace().attach(sim)
        host = Host(variant="xl", sim=sim)
        boots = [host.create_vm(DAYTIME_UNIKERNEL).boot_ms
                 for _ in range(20)]

        assert via_spec.digest == trace.digest()
        assert via_spec.series["boot_ms"] == boots


class TestRunnerErrors:
    def test_unknown_runtime_is_an_error(self):
        import dataclasses

        import pytest
        spec = storm_spec("s", "xl@1", "docker@1", 2)
        weird = dataclasses.replace(
            spec, guest=dataclasses.replace(spec.guest, runtime="jar"))
        with pytest.raises(ValueError):
            run_scenario(weird)

    def test_record_is_json_scalars_only(self):
        import json
        record = run_scenario(
            storm_spec("s", "lightvm@1", "daytime@1", 3)).record()
        json.dumps(record)  # must not raise
        assert set(record) == {"seed", "digest", "events", "sim_ms",
                               "stats"}

    def test_spec_source_survives_into_scenario_spec(self):
        spec = storm_spec("s", "lightvm@1", "daytime@1", 3)
        assert ScenarioSpec.from_dict(spec.source).digest() == \
            spec.digest()
