"""The documentation must not rot: README code runs, docs reference real
files, and the claimed numbers stay truthful."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_example_scripts_listed_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (ROOT / "examples" / name).exists(), name


class TestDesignDoc:
    def test_bench_targets_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_package_inventory_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        for module in re.findall(r"`repro\.(\w+)`", design):
            assert (ROOT / "src" / "repro" / module).exists() or \
                (ROOT / "src" / "repro" / ("%s.py" % module)).exists(), \
                module


class TestExperimentsDoc:
    def test_every_figure_has_a_section(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Fig 1", "Fig 2", "Fig 4", "Fig 5", "Fig 9",
                       "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14",
                       "Fig 15", "Fig 16a", "Fig 16b", "Fig 16c",
                       "Fig 17"):
            assert "## %s" % figure in text, figure

    def test_headline_claims_still_hold(self):
        """Re-measure the two headline numbers the docs quote."""
        from repro.core import Host
        from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL
        host = Host(variant="lightvm")
        host.warmup(500)
        noop = host.create_vm(NOOP_UNIKERNEL)
        assert abs(noop.total_ms - 2.25) < 0.3
        daytime = host.create_vm(DAYTIME_UNIKERNEL)
        assert abs(daytime.total_ms - 4.4) < 0.5
