"""The naive reference DES kernel (pre-optimization seed semantics).

This module freezes the simulation kernel exactly as it stood *before*
the fast-path work (slotted events, closure-free ``schedule``, pooled
timeouts, the inlined run loop, incremental ``AllOf`` collection): a
straight copy of the seed implementations of ``Event``/``Timeout``/
``Condition``/``Process`` and the ``Simulator`` queue loop.  It exists
for one purpose — to *prove* the optimizations preserve the timeline.
``tests/test_reference_kernel.py`` drives the same figure workloads
(fig04 / fig09 / fig10 slices) once on the optimized kernel and once on
this one and asserts the :class:`~repro.analysis.sanitize.EventTrace`
digests are byte-identical; ``benchmarks/bench_engine.py`` runs the same
microbench on both to measure the speedup.

Implementation notes:

* Every class *subclasses* its optimized counterpart so that shared
  machinery (``repro.sim.resources``, ``repro.sim.cpu``, the toolstack)
  keeps working unmodified on a reference run: a ``Request`` yielded to
  a reference ``Process`` still passes the kernel's ``isinstance``
  checks in both directions.
* Class ``__name__``s deliberately shadow the optimized ones ("Event",
  "Timeout", ...) because the replay digest encodes
  ``type(event).__name__``; a reference run must hash the same type
  names as an optimized run.
* ``__init__`` overrides call ``Event.__init__`` explicitly instead of
  ``super().__init__`` — going through the MRO would execute the
  *optimized* initializers (bootstrap pushes, pool bookkeeping) a
  second time.

Do not "improve" this module: it is the measuring stick, not the code
under test.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.sim import engine as _engine
from repro.sim import events as _events
from repro.sim import process as _process
from repro.sim.events import PENDING, Interrupt, SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Process", "Simulator"]


class Event(_events.Event):
    """Seed-state event: plain ``__dict__`` object, list-only callbacks."""

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False

    def succeed(self, value: object = None) -> "Event":
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not PENDING:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.event_double_trigger(self)
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._push(self)
        return self

    def add_callback(self, callback) -> None:
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """Seed-state timeout: generic event machinery, no pooling."""

    def __init__(self, sim, delay: float, value: object = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % delay)
        Event.__init__(self, sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(self, delay=delay)


class Condition(Event):
    """Seed-state composite event: collects by re-walking ``events``."""

    def __init__(self, sim, events: typing.Sequence[_events.Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        if not self.events:
            self.succeed(self._collect())
            return
        self._remaining = len(self.events)
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    def _check(self, event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    def _check(self, event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self.succeed(self._collect())


class Process(_process.Process):
    """Seed-state process driver (per-resume attribute traffic kept)."""

    def __init__(self, sim, generator: typing.Generator,
                 name: typing.Optional[str] = None):
        Event.__init__(self, sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r"
                            % (generator,))
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        self.daemon = False
        if sim.sanitizer is not None:
            sim.sanitizer.track_process(self)
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        sim._push(bootstrap)
        bootstrap.add_callback(self._resume)

    def interrupt(self, cause: object = None) -> None:
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        kick = Event(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defused = True
        self._waiting_on = kick
        self.sim._push(kick)
        kick.add_callback(self._resume)

    def _resume(self, event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return
        self._waiting_on = None
        prev = self.sim.active_process
        self.sim.active_process = self
        try:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(
                        typing.cast(BaseException, event._value))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
        finally:
            self.sim.active_process = prev
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        if isinstance(target, (int, float)):
            try:
                target = self.sim.timeout(target)
            except ValueError as exc:
                self._generator.close()
                self.fail(exc)
                return
        # isinstance against the *shared* base class: a reference run
        # still yields Requests/Stores built on the optimized Event.
        if not isinstance(target, _events.Event):
            self._generator.close()
            self.fail(TypeError(
                "process %r yielded %r; expected an Event, Process or a "
                "numeric delay" % (self.name, target)))
            return
        if target.sim is not self.sim:
            self.fail(ValueError("yielded event belongs to another "
                                 "simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator(_engine.Simulator):
    """Seed-state queue loop: per-event ``peek``/``step`` calls, a fresh
    lambda per ``schedule``, no same-instant batching, no pooling."""

    def __init__(self, start: float = 0.0):
        super().__init__(start)

    # -- event factories (return the naive classes) --------------------
    def event(self):
        return Event(self)

    def timeout(self, delay: float, value: object = None):
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator):
        return Process(self, generator)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    def schedule(self, delay: float, callback, *args):
        event = self.timeout(delay)
        event.add_callback(lambda _evt: callback(*args))
        return event

    def call_later(self, delay: float, callback, *args) -> None:
        # Seed equivalent of the optimized fire-and-forget fast path:
        # a plain scheduled timeout (pays the closure and the object).
        self.schedule(delay, callback, *args)

    # -- queue management ----------------------------------------------
    def _push(self, event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._order),
                                     event))

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _order, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError(
                "clock would run backwards (%r -> %r): the heap ordering "
                "contract was violated" % (self._now, when))
        self._now = when
        self.processed_events += 1
        if self.trace is not None:
            self.trace.record(when, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise typing.cast(BaseException, event._value)

    def run(self, until=None) -> object:
        stop_event = None
        stop_processed = [False]
        stop_time = float("inf")
        if isinstance(until, _events.Event):
            stop_event = until
            stop_event.defused = True
            stop_event.add_callback(
                lambda _evt: stop_processed.__setitem__(0, True))
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until=%r is in the past (now=%r)"
                                 % (until, self._now))

        while self._queue:
            if stop_processed[0]:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event "
                    "triggered")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            return stop_event.value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
