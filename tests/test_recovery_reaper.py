"""Toolstack crash consistency: intents, the orphan reaper, the sweep.

A toolstack killed mid-create/destroy/migrate (``toolstack.*`` fault
points) leaves a half-done operation behind.  The per-phase intent
record stays open; ``Host.recover()`` rolls creates back, destroys
forward and migrations back to the source, then sweeps the store for
orphan subtrees.  Every test ends with a clean invariant audit.
"""

import pytest

from repro.core import Host, XEON_E5_1630_2DOM0
from repro.faults import FaultPlan, ToolstackCrashed
from repro.guests import DAYTIME_UNIKERNEL
from repro.hypervisor import DomainState
from repro.net import Link
from repro.sim import Simulator
from repro.toolstack import migrate


def make_host(variant="chaos+xs", plan=None, seed=0, sim=None):
    host = Host(variant=variant, seed=seed, sim=sim, fault_plan=plan,
                recovery=True)
    host.warmup(500)
    return host


def drained(host, ms=500.0):
    host.sim.run(until=host.sim.now + ms)
    return host.check_invariants()


class TestCreateCrash:
    # toolstack.create is consulted once per phase:
    # hypervisor, xenstore, devices, load.
    @pytest.mark.parametrize("occurrence,phase", [
        (1, "hypervisor"), (2, "xenstore"), (3, "devices"), (4, "load")])
    @pytest.mark.parametrize("variant", ["xl", "chaos+xs"])
    def test_crash_at_each_phase_reaps_clean(self, variant, occurrence,
                                             phase):
        plan = FaultPlan.once("toolstack.create", occurrence=occurrence,
                              kind="crash")
        host = make_host(variant, plan)
        with pytest.raises(ToolstackCrashed):
            host.create_vm(DAYTIME_UNIKERNEL)
        for _ in range(2):
            host.create_vm(DAYTIME_UNIKERNEL)

        intents = host.recovery.intents.open_intents()
        assert [i.op for i in intents] == ["create"]
        assert intents[0].crashed and intents[0].phase == phase

        host.recover()
        assert host.recovery.reaper.reaped["create"] == 1
        assert not host.recovery.intents.open_intents()
        assert host.running_guests == 2
        assert drained(host) == []

    def test_unreaped_crash_is_an_invariant_violation(self):
        plan = FaultPlan.once("toolstack.create", occurrence=2,
                              kind="crash")
        host = make_host("chaos+xs", plan)
        with pytest.raises(ToolstackCrashed):
            host.create_vm(DAYTIME_UNIKERNEL)
        violations = drained(host)
        assert violations and "still open" in violations[0]
        host.recover()
        assert drained(host) == []

    def test_successful_creates_close_their_intents(self):
        host = make_host()
        for _ in range(3):
            host.create_vm(DAYTIME_UNIKERNEL)
        assert len(host.recovery.intents) == 3
        assert not host.recovery.intents.open_intents()
        host.recover()  # reaping with nothing open is a no-op
        assert host.recovery.reaper.reaped["create"] == 0
        assert host.running_guests == 3
        assert drained(host) == []


class TestDestroyCrash:
    # toolstack.destroy phases: paused, devices, xenstore.
    @pytest.mark.parametrize("occurrence", [1, 2, 3])
    def test_crash_mid_destroy_rolls_forward(self, occurrence):
        plan = FaultPlan.once("toolstack.destroy", occurrence=occurrence,
                              kind="crash")
        host = make_host("chaos+xs", plan)
        keep = host.create_vm(DAYTIME_UNIKERNEL)
        victim = host.create_vm(DAYTIME_UNIKERNEL)
        with pytest.raises(ToolstackCrashed):
            host.destroy_vm(victim.domain)
        host.recover()
        # Roll forward: the half-destroyed guest finishes dying.
        assert host.recovery.reaper.reaped["destroy"] == 1
        assert victim.domain.domid not in host.hypervisor.domains
        assert keep.domain.state is DomainState.RUNNING
        assert host.running_guests == 1
        assert drained(host) == []

    def test_xl_destroy_crash_rolls_forward(self):
        plan = FaultPlan.once("toolstack.destroy", occurrence=2,
                              kind="crash")
        host = make_host("xl", plan)
        record = host.create_vm(DAYTIME_UNIKERNEL)
        with pytest.raises(ToolstackCrashed):
            host.destroy_vm(record.domain)
        host.recover()
        assert host.running_guests == 0
        assert drained(host) == []


class TestSweep:
    def test_orphan_subtrees_are_swept(self):
        host = make_host()
        host.create_vm(DAYTIME_UNIKERNEL)

        def plant():
            from repro.xenstore import XsClient
            client = XsClient(host.xenstore)
            yield from client.mkdir("/local/domain/99/device")
            yield from client.write("/vm/99", "ghost")
        host.sim.run(until=host.sim.process(plant()))
        assert drained(host) != []  # the leak is visible

        host.recover()
        assert host.recovery.reaper.swept_paths == [
            "/local/domain/99", "/vm/99"]
        assert not host.xenstore.tree.exists("/local/domain/99")
        assert drained(host) == []

    def test_live_domains_survive_the_sweep(self):
        host = make_host()
        records = [host.create_vm(DAYTIME_UNIKERNEL) for _ in range(3)]
        host.recover()
        assert host.recovery.reaper.swept_paths == []
        for record in records:
            assert record.domain.state is DomainState.RUNNING
        assert drained(host) == []


class TestMigrationCrash:
    def _pair(self, plan):
        sim = Simulator()
        src = Host(spec=XEON_E5_1630_2DOM0, variant="chaos+xs", sim=sim,
                   fault_plan=plan, recovery=True)
        dst = Host(spec=XEON_E5_1630_2DOM0, variant="chaos+xs", sim=sim,
                   seed=1, recovery=True)
        src.warmup(500)
        config = src.config_for(DAYTIME_UNIKERNEL)
        record = src.create_vm(config)
        link = Link(sim, latency_ms=0.1, bandwidth_mbps=1000.0)
        return sim, src, dst, record.domain, config, link

    def test_crash_mid_memory_copy_recovers_both_hosts(self):
        plan = FaultPlan.once("toolstack.migrate", occurrence=1,
                              kind="crash")
        sim, src, dst, domain, config, link = self._pair(plan)
        proc = sim.process(migrate(
            src.checkpointer, dst.checkpointer, domain, config, link,
            faults=src.faults, intents=src.recovery.intents))
        with pytest.raises(ToolstackCrashed):
            sim.run(until=proc)
        # Mid-copy: the source is suspended, the destination half-built.
        assert domain.state is DomainState.SUSPENDED

        src.recover()
        assert src.recovery.reaper.reaped["migrate"] == 1
        # The source keeps running; the destination's partial guest is
        # reaped and its ambient weights are consistent again.
        assert domain.state is DomainState.RUNNING
        assert src.running_guests == 1
        assert dst.running_guests == 0
        sim.run(until=sim.now + 500.0)
        assert src.check_invariants() == []
        assert dst.check_invariants() == []

    def test_clean_migration_closes_its_intent(self):
        sim, src, dst, domain, config, link = self._pair(plan=None)
        proc = sim.process(migrate(
            src.checkpointer, dst.checkpointer, domain, config, link,
            faults=src.faults, intents=src.recovery.intents))
        remote = sim.run(until=proc)
        assert remote.state is DomainState.RUNNING
        assert not src.recovery.intents.open_intents()
        sim.run(until=sim.now + 500.0)
        assert src.check_invariants() == []
        assert dst.check_invariants() == []
