"""Tests for the discrete-event simulation engine."""

import heapq

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_timeouts_fire_in_order():
    sim = Simulator()
    seen = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, seen.append, delay)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_same_time_events_fifo():
    sim = Simulator()
    seen = []
    for tag in range(5):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == list(range(5))


def test_same_time_interleaved_events_pop_in_insertion_order():
    """The determinism contract: the heap is keyed by (time, insertion
    order) and nothing else.  Events landing on the same timestamp via
    *different* construction paths — direct timeouts, longer timeouts
    created earlier, immediate succeeds fired by callbacks — must still
    pop in exactly the order they were pushed."""
    sim = Simulator()
    seen = []
    # Insertion 0: a timeout created now, firing at t=5.
    sim.schedule(5.0, seen.append, "early-push")
    # Insertion 1: another t=5 arrival, pushed second.
    sim.schedule(5.0, seen.append, "second-push")
    # Insertions made later in wall order but also landing on t=5: a
    # callback at t=2 schedules two more t=5 events plus an immediate
    # event succeeded at t=5 exactly.
    def at_two():
        sim.schedule(3.0, seen.append, "from-t2-a")
        sim.schedule(3.0, seen.append, "from-t2-b")
    sim.schedule(2.0, at_two)
    # A plain event succeeded from a t=5 callback lands *after* every
    # event already queued for t=5 (it is pushed last).
    late = sim.event()
    late.add_callback(lambda _e: seen.append("succeeded-at-t5"))
    sim.schedule(5.0, late.succeed)

    sim.run()
    assert seen == ["early-push", "second-push", "from-t2-a",
                    "from-t2-b", "succeeded-at-t5"]


def test_clock_never_runs_backwards():
    """A push that would rewind the clock is a contract violation the
    kernel refuses to process silently."""
    sim = Simulator()
    sim.timeout(10.0)
    sim.run()
    assert sim.now == 10.0
    stale = Event(sim)
    stale._ok = True
    stale._value = None
    # Forge a past-dated entry directly into the bucketed queue.
    sim._buckets[5.0] = [stale]
    heapq.heappush(sim._times, 5.0)
    with pytest.raises(SimulationError, match="backwards"):
        sim.step()
    # run() enforces the same contract.
    with pytest.raises(SimulationError, match="backwards"):
        sim.run()


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_time_raises():
    sim = Simulator(start=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()
    evt = sim.event()
    sim.schedule(7.0, evt.succeed, "done")
    assert sim.run(until=evt) == "done"
    assert sim.now == 7.0


def test_run_until_failed_event_raises():
    sim = Simulator()
    evt = sim.event()
    sim.schedule(1.0, evt.fail, RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=evt)


def test_run_until_event_never_fires_raises():
    sim = Simulator()
    evt = sim.event()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(until=evt)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_unhandled_failure_escalates():
    sim = Simulator()
    evt = sim.event()
    evt.fail(ValueError("unhandled"))
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_defused_failure_does_not_escalate():
    sim = Simulator()
    evt = sim.event()
    evt.defused = True
    evt.fail(ValueError("handled"))
    sim.run()  # should not raise


def test_late_callback_runs_immediately():
    sim = Simulator()
    evt = sim.timeout(1.0, value="v")
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_all_of_collects_values():
    sim = Simulator()
    e1 = sim.timeout(1.0, value="a")
    e2 = sim.timeout(2.0, value="b")
    both = sim.all_of([e1, e2])
    result = sim.run(until=both)
    assert result == {e1: "a", e2: "b"}
    assert sim.now == 2.0


def test_any_of_fires_on_first():
    sim = Simulator()
    e1 = sim.timeout(5.0, value="slow")
    e2 = sim.timeout(1.0, value="fast")
    either = sim.any_of([e1, e2])
    result = sim.run(until=either)
    assert result == {e2: "fast"}
    assert sim.now == 1.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    done = sim.all_of([])
    assert done.triggered
    assert done.value == {}


def test_processed_event_counter():
    sim = Simulator()
    for _ in range(3):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events == 3


def test_all_of_fails_when_child_fails():
    sim = Simulator()
    good = sim.timeout(1.0, value="ok")
    bad = sim.event()
    sim.schedule(2.0, bad.fail, RuntimeError("child died"))
    both = sim.all_of([good, bad])
    with pytest.raises(RuntimeError, match="child died"):
        sim.run(until=both)


def test_any_of_fails_when_first_event_fails():
    sim = Simulator()
    slow = sim.timeout(5.0, value="slow")
    bad = sim.event()
    sim.schedule(1.0, bad.fail, ValueError("early failure"))
    either = sim.any_of([slow, bad])
    with pytest.raises(ValueError, match="early failure"):
        sim.run(until=either)


def test_condition_failure_defuses_child():
    """The condition consumes the child's failure; it must not also
    escalate independently."""
    sim = Simulator()
    bad = sim.event()
    sim.schedule(1.0, bad.fail, KeyError("contained"))
    both = sim.all_of([bad])
    try:
        sim.run(until=both)
    except KeyError:
        pass
    # No unhandled-failure escalation afterwards.
    sim.timeout(1.0)
    sim.run()


# ----------------------------------------------------------------------
# Epoch-driver surface: schedule_at, exclusive bounds, drain hooks
# ----------------------------------------------------------------------

def test_schedule_at_fires_at_exact_instant():
    sim = Simulator()
    seen = []
    sim.schedule_at(7.5, seen.append, "x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 7.5


def test_schedule_at_exact_float_no_ulp_split():
    """schedule_at(t) and a relative path landing on t share one bucket.

    0.1 + 0.2 != 0.3 in floats; the absolute-time API must not reproduce
    that split, or cross-backend delivery order would diverge."""
    sim = Simulator()
    seen = []
    when = 0.1 + 0.2  # 0.30000000000000004
    sim.schedule_at(when, seen.append, "absolute")
    sim.schedule(when, seen.append, "relative")
    sim.run()
    assert seen == ["absolute", "relative"]


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(4.0, lambda: None)


def test_run_until_exclusive_leaves_boundary_event():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "boundary")
    sim.run(until=5.0, inclusive=False)
    assert seen == []
    assert sim.now == 5.0
    sim.run()
    assert seen == ["boundary"]


def test_run_until_exclusive_windows_partition_timeline():
    """Strict windows [kL, (k+1)L) process every event exactly once."""
    sim = Simulator()
    seen = []
    for t in (0.0, 4.9, 5.0, 9.9, 10.0, 12.0):
        sim.schedule(t, seen.append, t)
    for k in (1, 2, 3):
        sim.run(until=5.0 * k, inclusive=False)
    assert seen == [0.0, 4.9, 5.0, 9.9, 10.0, 12.0]


def test_drain_hooks_fire_after_every_run():
    sim = Simulator()
    calls = []
    sim.drain_hooks.append(lambda s: calls.append(s.now))
    sim.timeout(3.0)
    sim.run(until=2.0)
    sim.run()
    assert calls == [2.0, 3.0]
