"""Figure 10 density under failure: 8000 guests, a daemon crash, a cap.

The paper's headline density run (n=8000 unikernels on one host), driven
in concurrent waves against a *bounded* daemon admission queue with a
daemon crash injected mid-run.  Acceptance: the run completes with every
guest accounted for — created, reaped after a toolstack crash, or
rejected with a typed ``Overloaded`` — and a clean invariant audit.
"""

from repro.core import Host
from repro.faults import FaultPlan, FaultRule, Overloaded, ToolstackCrashed
from repro.guests import DAYTIME_UNIKERNEL

N = 8000
WAVE = 16
#: ~17 charged daemon ops per create: occurrence ~N*17/2 is mid-run.
MID_RUN = N * 17 // 2


def drive_density(host, total, wave=WAVE):
    """Create ``total`` guests in concurrent waves; tally typed outcomes."""
    tally = {"created": 0, "crashed": 0, "rejected": 0, "other": []}

    def one(config):
        try:
            yield from host.toolstack.create_vm(config)
            tally["created"] += 1
        except ToolstackCrashed:
            tally["crashed"] += 1
        except Overloaded:
            tally["rejected"] += 1
        except Exception as exc:  # anything untyped fails the test below
            tally["other"].append("%s: %s" % (type(exc).__name__, exc))

    launched = 0
    while launched < total:
        batch = min(wave, total - launched)
        procs = [host.sim.process(one(host.config_for(DAYTIME_UNIKERNEL)))
                 for _ in range(batch)]
        launched += batch
        host.sim.run(until=host.sim.all_of(procs))
    return tally


class TestPaperScaleDensityUnderFailure:
    def test_8000_guests_with_mid_run_daemon_crash(self):
        plan = FaultPlan(rules=(
            FaultRule(point="xenstore.daemon_crash", at=(MID_RUN,),
                      kind="crash"),
            # And a couple of toolstack kills for the reaper to handle.
            FaultRule(point="toolstack.create", at=(2001, 12002),
                      kind="crash"),
        ))
        host = Host(variant="chaos+xs+split", seed=0,
                    pool_target=WAVE * 4, xenstore_queue_cap=3,
                    fault_plan=plan, recovery=True)
        host.warmup(2000)

        tally = drive_density(host, N)
        host.recover()
        host.sim.run(until=host.sim.now + 1000.0)

        # Every guest has exactly one typed outcome.
        assert tally["other"] == []
        assert (tally["created"] + tally["crashed"]
                + tally["rejected"]) == N
        # The daemon really died and came back mid-run...
        assert host.xenstore.stats["crashes"] == 1
        assert host.xenstore.stats["restarts"] == 1
        assert not host.xenstore.crashed
        # ...shedding really happened (absorbed or typed)...
        assert host.xenstore.stats["shed"] > 0
        # ...the toolstack kills were reaped...
        assert tally["crashed"] == 2
        assert host.recovery.reaper.reaped["create"] == 2
        assert not host.recovery.intents.open_intents()
        # ...and the survivors add up, with a clean audit.
        assert host.running_guests == tally["created"]
        assert host.check_invariants() == []
