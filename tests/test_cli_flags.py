"""Shared CLI flag conventions: seed sets, one-shot deprecation warnings."""

import argparse
import io

import pytest

from repro import cli_flags
from repro.cli_flags import (contiguous_range, parse_seed_set, seed_set,
                             warn_once)


@pytest.fixture(autouse=True)
def _fresh_warnings():
    cli_flags.reset_warnings()
    yield
    cli_flags.reset_warnings()


class TestParseSeedSet:
    def test_inclusive_range(self):
        assert parse_seed_set("0..31") == list(range(32))

    def test_explicit_list(self):
        assert parse_seed_set("0, 4, 9") == [0, 4, 9]

    def test_single_seed(self):
        assert parse_seed_set("7") == [7]

    def test_negative_seeds_allowed(self):
        assert parse_seed_set("-2..1") == [-2, -1, 0, 1]

    def test_backwards_range_rejected(self):
        with pytest.raises(ValueError) as err:
            parse_seed_set("9..3")
        assert "backwards" in str(err.value)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError) as err:
            parse_seed_set("1,2,1")
        assert "repeats" in str(err.value)

    def test_garbage_rejected_with_expected_shapes(self):
        with pytest.raises(ValueError) as err:
            parse_seed_set("all of them")
        assert "expected 'A..B'" in str(err.value)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_seed_set("  ")

    def test_argparse_adapter_raises_argument_type_error(self):
        with pytest.raises(argparse.ArgumentTypeError):
            seed_set("9..3")
        assert seed_set("0..2") == [0, 1, 2]


class TestContiguousRange:
    def test_contiguous_in_any_order(self):
        assert contiguous_range([3, 1, 2]) == (1, 3)
        assert contiguous_range([5]) == (5, 1)

    def test_gaps_are_not_contiguous(self):
        assert contiguous_range([0, 2]) is None

    def test_empty_is_not_contiguous(self):
        assert contiguous_range([]) is None


class TestWarnOnce:
    def test_warns_exactly_once_per_key(self):
        stream = io.StringIO()
        assert warn_once("k", "old spelling", stream=stream) is True
        assert warn_once("k", "old spelling", stream=stream) is False
        assert stream.getvalue().count("old spelling") == 1
        assert stream.getvalue().startswith("repro: warning:")

    def test_distinct_keys_each_warn(self):
        stream = io.StringIO()
        warn_once("a", "first", stream=stream)
        warn_once("b", "second", stream=stream)
        assert "first" in stream.getvalue()
        assert "second" in stream.getvalue()

    def test_reset_allows_rewarning(self):
        stream = io.StringIO()
        warn_once("k", "again", stream=stream)
        cli_flags.reset_warnings()
        assert warn_once("k", "again", stream=stream) is True


class TestCliIntegration:
    def test_run_and_cluster_share_the_seeds_spelling(self):
        from repro.cli import build_parser
        parser = build_parser()
        run_args = parser.parse_args(["run", "x.yaml", "--seeds", "0..3"])
        cluster_args = parser.parse_args(["cluster", "--seeds", "0..3"])
        assert run_args.seeds == cluster_args.seeds == [0, 1, 2, 3]

    def test_chaos_deprecated_count_spelling_warns_once(self, capsys):
        from repro.cli import main
        # Campaign over 2 consecutive seeds, the old spelling.
        code = main(["chaos", "--seeds", "2", "--count", "2",
                     "--occurrences", "4", "--rules", "1"])
        err = capsys.readouterr().err
        assert code in (0, 1)
        assert "deprecated" in err
        assert "--seeds 0..1" in err

    def test_chaos_canonical_range_does_not_warn(self, capsys):
        from repro.cli import main
        code = main(["chaos", "--seeds", "0..1", "--count", "2",
                     "--occurrences", "4", "--rules", "1"])
        assert code in (0, 1)
        assert "deprecated" not in capsys.readouterr().err

    def test_chaos_non_contiguous_seed_set_rejected(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["chaos", "--seeds", "0,2,7"])
        assert "contiguous" in capsys.readouterr().err

    def test_cluster_churn_scenario_warns_once(self, capsys):
        from repro.cli import main
        code = main(["cluster", "--scenario", "churn", "--hosts", "2",
                     "--guests", "4"])
        assert code == 0
        out = capsys.readouterr()
        assert "deprecated" in out.err
        assert "migration-churn" in out.out  # ran the canonical scenario

    def test_cluster_seed_set_runs_every_seed(self, capsys):
        from repro.cli import main
        code = main(["cluster", "--hosts", "2", "--guests", "4",
                     "--seeds", "0..1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed 0" in out
        assert "seed 1" in out
