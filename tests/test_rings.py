"""Tests for the shared I/O rings (split-driver data path)."""

import pytest

from repro.hypervisor.rings import RingFullError, RingPair, SharedRing


class TestBasics:
    def test_fifo_order(self):
        ring = SharedRing(order=3)
        for value in range(5):
            ring.push(value)
        assert ring.drain() == [0, 1, 2, 3, 4]

    def test_capacity_is_power_of_two(self):
        ring = SharedRing(order=3)
        assert ring.size == 8
        for value in range(8):
            ring.push(value)
        assert ring.is_full
        with pytest.raises(RingFullError):
            ring.push(99)

    def test_pop_empty_rejected(self):
        with pytest.raises(IndexError):
            SharedRing().pop()

    def test_space_accounting(self):
        ring = SharedRing(order=2)
        ring.push("a")
        ring.push("b")
        assert ring.unconsumed == 2
        assert ring.free == 2
        ring.pop()
        assert ring.unconsumed == 1
        assert ring.free == 3

    def test_wraparound_many_times(self):
        ring = SharedRing(order=2)
        for value in range(100):
            ring.push(value)
            assert ring.pop() == value
        assert ring.is_empty

    def test_order_validation(self):
        with pytest.raises(ValueError):
            SharedRing(order=-1)
        with pytest.raises(ValueError):
            SharedRing(order=13)


class TestNotificationSuppression:
    def test_first_push_notifies_sleeping_consumer(self):
        ring = SharedRing()
        assert ring.push("wake up") is True

    def test_pushes_while_awake_are_suppressed(self):
        ring = SharedRing()
        assert ring.push(1) is True
        # Consumer has not re-armed: it is busy processing.
        assert ring.push(2) is False
        assert ring.push(3) is False
        assert ring.notifications_sent == 1
        assert ring.notifications_suppressed == 2

    def test_final_check_rearms(self):
        ring = SharedRing()
        ring.push(1)
        ring.drain()
        assert ring.final_check() is False  # nothing raced in: sleep
        assert ring.push(2) is True         # so the next push notifies

    def test_final_check_detects_race(self):
        ring = SharedRing()
        ring.push(1)
        ring.pop()
        ring.push(2)                 # races in before final check
        assert ring.final_check() is True   # consumer must loop, not sleep

    def test_busy_ring_suppresses_most_notifications(self):
        """The whole point: per-item kicks vanish under load."""
        ring = SharedRing(order=6)
        produced = 0
        consumed = 0
        while consumed < 1000:
            while not ring.is_full and produced < 1000:
                ring.push(produced)
                produced += 1
            while not ring.is_empty:
                ring.pop()
                consumed += 1
            if not ring.final_check():
                pass  # would sleep; next push will notify
        total = ring.notifications_sent + ring.notifications_suppressed
        assert total == 1000
        assert ring.notifications_sent < 100


class TestRingPair:
    def test_round_trip(self):
        pair = RingPair(order=2)
        pair.requests.push({"op": "read"})
        assert pair.round_trip_ready()
        request = pair.requests.pop()
        pair.responses.push({"for": request["op"], "status": 0})
        assert pair.responses.pop()["status"] == 0

    def test_not_ready_when_no_requests(self):
        assert not RingPair().round_trip_ready()
