"""Tests for the Tinyx build system: packages, resolution, overlay,
kernel trimming, and the end-to-end builder."""

import pytest

from repro.guests import GuestKind
from repro.tinyx import (APP_BINARIES, DEFAULT_BLACKLIST,
                         DEFAULT_TRIM_CANDIDATES, DependencyError,
                         KernelConfig, Package, PackageUniverse,
                         TinyxBuilder, UnknownPackageError, assemble,
                         debian_kernel_size_kb, debian_universe,
                         default_boot_test, discover_library_packages,
                         plan_install, resolve_closure, trim)


class TestUniverse:
    def test_universe_is_self_consistent(self):
        universe = debian_universe()
        for name in universe.names():
            for dep in universe.get(name).depends:
                assert dep in universe, "%s depends on missing %s" % (name,
                                                                      dep)

    def test_lib_provider_lookup(self):
        universe = debian_universe()
        assert universe.provider_of_lib("libz.so.1").name == "zlib1g"

    def test_missing_lib_provider(self):
        universe = debian_universe()
        with pytest.raises(UnknownPackageError):
            universe.provider_of_lib("libquantum.so.9")

    def test_duplicate_package_rejected(self):
        universe = PackageUniverse([Package("a", "1", 10)])
        with pytest.raises(ValueError):
            universe.add(Package("a", "2", 10))

    def test_app_binaries_resolvable(self):
        universe = debian_universe()
        for app in APP_BINARIES.values():
            providers = discover_library_packages(app, universe)
            assert providers, app.name


class TestResolution:
    def test_nginx_closure_contains_runtime_deps(self):
        universe = debian_universe()
        packages = plan_install(APP_BINARIES["nginx"], universe,
                                blacklist=DEFAULT_BLACKLIST)
        names = [p.name for p in packages]
        for expected in ("nginx", "libc6", "libpcre3", "zlib1g",
                         "libssl1.0.0"):
            assert expected in names

    def test_blacklist_cuts_install_machinery(self):
        universe = debian_universe()
        packages = plan_install(APP_BINARIES["nginx"], universe,
                                blacklist=DEFAULT_BLACKLIST)
        names = {p.name for p in packages}
        assert not names & set(DEFAULT_BLACKLIST)

    def test_whitelist_forces_inclusion(self):
        universe = debian_universe()
        packages = plan_install(APP_BINARIES["nginx"], universe,
                                blacklist=DEFAULT_BLACKLIST,
                                whitelist=("openssl",))
        assert "openssl" in {p.name for p in packages}

    def test_topological_order(self):
        universe = debian_universe()
        packages = resolve_closure(["nginx"], universe)
        position = {p.name: i for i, p in enumerate(packages)}
        for package in packages:
            for dep in package.depends:
                if dep in position:
                    assert position[dep] < position[package.name]

    def test_unknown_root_rejected(self):
        with pytest.raises(DependencyError):
            resolve_closure(["hurd"], debian_universe())

    def test_cycle_detected(self):
        universe = PackageUniverse([
            Package("a", "1", 10, depends=("b",)),
            Package("b", "1", 10, depends=("a",)),
        ])
        with pytest.raises(DependencyError):
            resolve_closure(["a"], universe)

    def test_blacklisted_root_yields_smaller_closure(self):
        universe = debian_universe()
        with_bl = resolve_closure(["debconf"], universe,
                                  blacklist=("perl-base",))
        without_bl = resolve_closure(["debconf"], universe)
        assert len(with_bl) < len(without_bl)


class TestOverlay:
    def _assembled(self, app="nginx"):
        universe = debian_universe()
        packages = plan_install(APP_BINARIES[app], universe,
                                blacklist=DEFAULT_BLACKLIST)
        return assemble(packages, universe, app_name=app)

    def test_caches_and_dpkg_state_stripped(self):
        result = self._assembled()
        assert result.stripped_kb > 0
        assert not any(p.startswith("var/cache/")
                       for p in result.filesystem.files)
        assert not any(p.startswith("var/lib/dpkg/")
                       for p in result.filesystem.files)

    def test_busybox_underlay_present(self):
        result = self._assembled()
        assert "bin/busybox" in result.filesystem.files

    def test_init_glue_added(self):
        result = self._assembled()
        assert "etc/init.d/S99nginx" in result.filesystem.files

    def test_application_binary_present(self):
        result = self._assembled()
        assert "usr/bin/nginx" in result.filesystem.files

    def test_filesystem_is_megabytes_not_hundreds(self):
        """The point of Tinyx: tens of MB, not a Debian rootfs."""
        result = self._assembled()
        total_mb = result.filesystem.total_kb / 1024.0
        assert total_mb < 40


class TestKernelConfig:
    def test_tinyconfig_small(self):
        assert KernelConfig.tinyconfig().size_kb() < 1500

    def test_enable_pulls_requirements(self):
        config = KernelConfig.tinyconfig()
        config.enable("CONFIG_XEN_NETFRONT")
        assert config.is_enabled("CONFIG_XEN")
        assert config.is_enabled("CONFIG_PARAVIRT")
        assert config.is_enabled("CONFIG_NET")

    def test_olddefconfig_drops_orphans(self):
        config = KernelConfig.tinyconfig()
        config.enable("CONFIG_XEN_NETFRONT")
        config.disable("CONFIG_NET")
        dropped = config.olddefconfig()
        assert "CONFIG_XEN_NETFRONT" in dropped
        assert not config.is_enabled("CONFIG_XEN_NETFRONT")

    def test_trim_keeps_needed_options(self):
        config = KernelConfig.tinyconfig()
        for option in ("CONFIG_XEN", "CONFIG_XEN_NETFRONT",
                       "CONFIG_HVC_XEN", "CONFIG_PROC_FS", "CONFIG_SYSFS",
                       "CONFIG_TMPFS", "CONFIG_INET"):
            config.enable(option)
        test = default_boot_test("xen")
        report = trim(config, ["CONFIG_XEN_NETFRONT", "CONFIG_IPV6"], test)
        assert "CONFIG_XEN_NETFRONT" in report.retained
        assert config.is_enabled("CONFIG_XEN_NETFRONT")

    def test_trim_removes_unneeded_options(self):
        config = KernelConfig.tinyconfig()
        for option in ("CONFIG_XEN", "CONFIG_XEN_NETFRONT",
                       "CONFIG_HVC_XEN", "CONFIG_PROC_FS", "CONFIG_SYSFS",
                       "CONFIG_TMPFS", "CONFIG_INET", "CONFIG_SOUND",
                       "CONFIG_DRM"):
            config.enable(option)
        test = default_boot_test("xen")
        report = trim(config, ["CONFIG_SOUND", "CONFIG_DRM"], test)
        assert set(report.removed) >= {"CONFIG_SOUND", "CONFIG_DRM"}
        assert report.size_after_kb < report.size_before_kb

    def test_trim_counts_builds(self):
        config = KernelConfig.tinyconfig()
        config.enable("CONFIG_SOUND")
        config.enable("CONFIG_SWAP")
        test = default_boot_test("xen")
        report = trim(config, ["CONFIG_SOUND", "CONFIG_SWAP"], test)
        assert report.builds == 2

    def test_distro_kernel_much_bigger(self):
        assert (KernelConfig.distro().size_kb()
                > KernelConfig.tinyconfig().size_kb() * 3)


class TestBuilder:
    def test_end_to_end_nginx(self):
        build = TinyxBuilder().build("nginx", platform="xen",
                                     trim_candidates=DEFAULT_TRIM_CANDIDATES)
        assert build.image.kind is GuestKind.TINYX
        assert build.image.vifs == 1
        assert "nginx" in build.packages
        assert build.trim_report is not None
        # Network must survive trimming (the wget boot test needs it).
        assert build.kernel_config.is_enabled("CONFIG_XEN_NETFRONT")

    def test_image_size_in_tinyx_range(self):
        """§3.2: images are a few tens of MBs (Fig 4's is 9.5 MB)."""
        build = TinyxBuilder().build("nginx", platform="xen",
                                     trim_candidates=DEFAULT_TRIM_CANDIDATES)
        size_mb = build.image.kernel_size_kb / 1024.0
        assert 4.0 <= size_mb <= 40.0

    def test_trimmed_kernel_half_of_debian(self):
        """§3.2: "kernel images that are half the size of typical Debian
        kernels"."""
        build = TinyxBuilder().build("nginx", platform="xen",
                                     trim_candidates=DEFAULT_TRIM_CANDIDATES)
        assert build.kernel_kb <= debian_kernel_size_kb() * 0.55

    def test_kvm_platform(self):
        build = TinyxBuilder().build("micropython", platform="kvm")
        assert build.kernel_config.is_enabled("CONFIG_KVM_GUEST")
        assert not build.kernel_config.is_enabled("CONFIG_XEN")

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            TinyxBuilder().build("nginx", platform="vmware")

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            TinyxBuilder().build("emacs")

    def test_built_image_boots_on_host(self):
        from repro.core import Host
        build = TinyxBuilder().build("nginx", platform="xen")
        host = Host(variant="lightvm")
        host.warmup(500)
        record = host.create_vm(build.image)
        assert record.boot_ms > 0
