"""Tests for the ASCII chart renderer."""

import pytest

from repro.core.asciiplot import GLYPHS, render


def test_basic_chart_structure():
    chart = render([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=5,
                   title="T")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert len([line for line in lines if "|" in line]) == 5
    assert any("+" in line for line in lines)
    assert "a" in lines[-1]


def test_extremes_labeled():
    chart = render([0, 10], {"a": [5.0, 50.0]}, width=20, height=5)
    assert "50" in chart  # top label
    assert "5.0" in chart  # bottom label


def test_multiple_series_distinct_glyphs():
    chart = render([1, 2], {"a": [1, 2], "b": [2, 1]}, width=20, height=5)
    assert GLYPHS[0] in chart
    assert GLYPHS[1] in chart


def test_log_scale_marks():
    chart = render([1, 2, 3], {"a": [1.0, 100.0, 10000.0]}, width=30,
                   height=8, logy=True)
    assert "log scale" in chart
    # Midpoint of a geometric series sits midway on a log axis.
    rows = [line.split("|", 1)[1] for line in chart.splitlines()
            if "|" in line]
    hit_rows = [index for index, row in enumerate(rows) if "*" in row]
    assert len(hit_rows) == 3
    assert hit_rows[1] - hit_rows[0] == pytest.approx(
        hit_rows[2] - hit_rows[1], abs=1)


def test_monotone_series_monotone_rows():
    chart = render(list(range(10)), {"a": list(range(1, 11))}, width=40,
                   height=10)
    rows = [line.split("|", 1)[1] for line in chart.splitlines()
            if "|" in line]
    columns = {}
    for row_index, row in enumerate(rows):
        for column_index, char in enumerate(row):
            if char == "*":
                columns[column_index] = row_index
    ordered = [columns[c] for c in sorted(columns)]
    assert ordered == sorted(ordered, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        render([], {"a": []})
    with pytest.raises(ValueError):
        render([1], {})
    with pytest.raises(ValueError):
        render([1, 2], {"a": [1]})
    with pytest.raises(ValueError):
        render([1], {"a": [1]}, width=4, height=2)


def test_flat_series_does_not_crash():
    chart = render([1, 2, 3], {"flat": [5.0, 5.0, 5.0]}, width=20,
                   height=5)
    assert "flat" in chart


def test_zero_values_on_log_scale_clamped():
    chart = render([1, 2], {"a": [0.0, 10.0]}, width=20, height=5,
                   logy=True)
    assert "log scale" in chart
