"""Tests for the runtime happens-before witness (repro.analysis.witness).

The two properties that make the witness trustworthy:

* **Transparency** — attaching a :class:`RaceWitness` must not perturb
  the timeline: the fig04/fig09/fig10 dual-kernel slices replay with
  byte-identical EventTrace digests witness-on vs witness-off.
* **Soundness on toys** — unlocked, unordered accesses to tracked state
  are reported; lock-protected or happens-before-ordered ones are not;
  descending same-family acquisition is an order violation; and the
  observed lock orders of a real sharded boot storm agree with the
  static lock-order graph.
"""

import pathlib

import pytest

from repro.analysis.races import analyze_paths
from repro.analysis.sanitize import EventTrace
from repro.analysis.witness import (RaceWitness, WitnessViolation,
                                    run_shard_witness)
from repro.sim import Simulator
from repro.sim.resources import Resource

from tests.test_reference_kernel import SCENARIOS, SEEDS

REPO = pathlib.Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Transparency: digests byte-identical with the witness attached
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_digest_identical_with_witness(name, seed):
    digests = []
    for attach_witness in (False, True):
        sim = Simulator()
        trace = EventTrace().attach(sim)
        if attach_witness:
            RaceWitness().attach(sim)
        SCENARIOS[name](sim, seed)
        digests.append(trace.digest())
    assert digests[0] == digests[1]


# ----------------------------------------------------------------------
# Soundness on toy programs
# ----------------------------------------------------------------------

def _two_rmw_processes(sim, witness, lock=None):
    """Two processes doing a read -> yield -> write of tracked state."""
    witness.track("host.booted")
    state = {"value": 0}

    def body(tag):
        if lock is not None:
            with lock.request() as request:
                yield request
                witness.access("host.booted", write=False,
                               site="%s:read" % tag)
                seen = state["value"]
                yield sim.timeout(1.0)
                witness.access("host.booted", write=True,
                               site="%s:write" % tag)
                state["value"] = seen + 1
        else:
            witness.access("host.booted", write=False,
                           site="%s:read" % tag)
            seen = state["value"]
            yield sim.timeout(1.0)
            witness.access("host.booted", write=True,
                           site="%s:write" % tag)
            state["value"] = seen + 1

    sim.process(body("a"))
    sim.process(body("b"))
    sim.run()


def test_unlocked_rmw_is_a_race():
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    _two_rmw_processes(sim, witness)
    assert witness.races
    assert "host.booted" in witness.races[0]
    with pytest.raises(WitnessViolation):
        witness.assert_clean()


def test_lock_protected_rmw_is_clean():
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    lock = Resource(sim, capacity=1, name="host.lock")
    _two_rmw_processes(sim, witness, lock=lock)
    assert witness.races == []
    witness.assert_clean()


def test_spawn_edge_orders_accesses():
    # Parent writes, then spawns the child that writes: ordered by the
    # spawn happens-before edge, no lock needed.
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    witness.track("config")

    def child():
        witness.access("config", write=True, site="child")
        yield sim.timeout(1.0)

    def parent():
        witness.access("config", write=True, site="parent")
        yield sim.timeout(1.0)
        sim.process(child())

    sim.process(parent())
    sim.run()
    assert witness.races == []


def test_wake_edge_orders_accesses():
    # Writer triggers an event the reader waits on: the trigger's clock
    # snapshot orders writer-before-reader.
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    witness.track("result")
    ready = sim.event()

    def writer():
        yield sim.timeout(1.0)
        witness.access("result", write=True, site="writer")
        ready.succeed()

    def reader():
        yield ready
        witness.access("result", write=False, site="reader")

    sim.process(writer())
    sim.process(reader())
    sim.run()
    assert witness.races == []


def test_untracked_labels_are_ignored():
    sim = Simulator()
    witness = RaceWitness().attach(sim)

    def body():
        witness.access("never.tracked", write=True)
        yield sim.timeout(1.0)

    sim.process(body())
    sim.process(body())
    sim.run()
    assert witness.races == []


def test_descending_family_acquisition_is_a_violation():
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    shards = [Resource(sim, capacity=1, name="toy.shard[%d]" % index)
              for index in range(3)]

    def backwards():
        requests = []
        try:
            for index in reversed(range(3)):
                request = shards[index].request()
                requests.append(request)
                yield request
            yield sim.timeout(1.0)
        finally:
            for request in requests:
                request.resource.release(request)

    sim.process(backwards())
    sim.run()
    assert witness.order_violations
    assert "toy.shard" in witness.order_violations[0]
    edges = {(e["src"], e["dst"]): e for e in witness.observed_order()}
    assert edges[("toy.shard[*]", "toy.shard[*]")]["ascending"] is False


def test_ascending_family_acquisition_is_clean():
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    shards = [Resource(sim, capacity=1, name="toy.shard[%d]" % index)
              for index in range(3)]

    def forwards():
        requests = []
        try:
            for index in range(3):
                request = shards[index].request()
                requests.append(request)
                yield request
            yield sim.timeout(1.0)
        finally:
            for request in reversed(requests):
                request.resource.release(request)

    sim.process(forwards())
    sim.run()
    assert witness.order_violations == []
    edges = {(e["src"], e["dst"]): e for e in witness.observed_order()}
    assert edges[("toy.shard[*]", "toy.shard[*]")]["ascending"] is True


# ----------------------------------------------------------------------
# Cross-validation against the static lock-order graph
# ----------------------------------------------------------------------

def test_shard_storm_matches_static_graph():
    report = analyze_paths([REPO / "src" / "repro"])
    witness = run_shard_witness(workers=4, guests=8)
    assert witness.validate_static(report.graph) == []
    edges = {(e["src"], e["dst"]): e for e in witness.observed_order()}
    shard_edge = edges[("xenstore.shard[*]", "xenstore.shard[*]")]
    assert shard_edge["ascending"] is True
    assert shard_edge["count"] > 0


def test_unpredicted_edge_is_a_discrepancy():
    report = analyze_paths([REPO / "src" / "repro"])
    sim = Simulator()
    witness = RaceWitness().attach(sim)
    alpha = Resource(sim, capacity=1, name="rogue.alpha")
    beta = Resource(sim, capacity=1, name="rogue.beta")

    def nested():
        with alpha.request() as outer:
            yield outer
            with beta.request() as inner:
                yield inner
                yield sim.timeout(1.0)

    sim.process(nested())
    sim.run()
    problems = witness.validate_static(report.graph)
    assert any("rogue.alpha -> rogue.beta" in p for p in problems)


def test_report_shape():
    witness = run_shard_witness(workers=2, guests=4)
    payload = witness.report()
    assert payload["spawns"] > 0
    assert payload["wakes"] > 0
    assert payload["order_violations"] == []
    assert payload["races"] == []
    rendered = witness.render()
    assert "observed" in rendered
