"""Tests for the ukvm/KVM comparison stack."""

import pytest

from repro.guests import DAYTIME_UNIKERNEL, NOOP_UNIKERNEL
from repro.kvm import UkvmHost
from repro.sim import RngStream, Simulator


def make_host(**kwargs):
    sim = Simulator()
    return sim, UkvmHost(sim, RngStream(0, "ukvm"), **kwargs)


def run(sim, gen):
    def wrapper():
        result = yield from gen
        return result
    return sim.run(until=sim.process(wrapper()))


def test_start_boots_in_about_10ms():
    """ukvm's reported boot times are ~10 ms."""
    sim, host = make_host()
    instance = run(sim, host.start(DAYTIME_UNIKERNEL))
    assert instance.create_ms + instance.boot_ms == pytest.approx(
        10.0, abs=5.0)


def test_cost_independent_of_population():
    sim, host = make_host()
    first = run(sim, host.start(DAYTIME_UNIKERNEL))
    for _ in range(200):
        run(sim, host.start(DAYTIME_UNIKERNEL))
    last = run(sim, host.start(DAYTIME_UNIKERNEL))
    assert last.create_ms == pytest.approx(first.create_ms, rel=0.3)


def test_memory_accounting_includes_monitor():
    sim, host = make_host()
    run(sim, host.start(DAYTIME_UNIKERNEL))
    used = host.memory_usage_kb()
    assert used > DAYTIME_UNIKERNEL.memory_kb
    assert used < DAYTIME_UNIKERNEL.memory_kb + 4096


def test_stop_releases_everything():
    sim, host = make_host()
    instance = run(sim, host.start(DAYTIME_UNIKERNEL))
    run(sim, host.stop(instance))
    assert host.running == 0
    assert host.memory_usage_kb() == 0


def test_no_vif_skips_tap_setup():
    sim_a, host_a = make_host()
    with_vif = run(sim_a, host_a.start(DAYTIME_UNIKERNEL))
    sim_b, host_b = make_host()
    no_vif = run(sim_b, host_b.start(NOOP_UNIKERNEL))
    assert no_vif.create_ms < with_vif.create_ms


def test_ukvm_between_lightvm_and_stock_xen():
    """The §9 landscape: LightVM < ukvm < xl for unikernel creation."""
    from repro.core import Host
    sim, kvm = make_host()
    ukvm_total = (lambda r: r.create_ms + r.boot_ms)(
        run(sim, kvm.start(DAYTIME_UNIKERNEL)))

    lightvm = Host(variant="lightvm")
    lightvm.warmup(500)
    lightvm_total = lightvm.create_vm(DAYTIME_UNIKERNEL).total_ms

    xl = Host(variant="xl")
    xl_total = xl.create_vm(DAYTIME_UNIKERNEL).total_ms

    assert lightvm_total < ukvm_total < xl_total
