"""The component registry: versioned refs, typed errors, overrides."""

import dataclasses

import pytest

from repro.stdlib import components as C
from repro.stdlib.library import (FaultProfile, GuestProfile, HostProfile,
                                  TrafficPattern)


class TestRegistry:
    def test_every_standard_kind_is_populated(self):
        assert C.kinds() == ["faults", "guest", "host", "placement",
                             "topology", "traffic"]
        for kind in C.kinds():
            assert C.names(kind), kind

    def test_variant_hosts_registered_at_version_1(self):
        for variant in ("xl", "chaos+xs", "chaos+xs+split", "chaos+noxs",
                        "lightvm"):
            host = C.lookup("host", variant, 1)
            assert host.variant == variant
        assert C.versions_of("host", "lightvm") == [1]

    def test_every_catalog_image_is_a_guest_component(self):
        from repro.guests import CATALOG
        for name in CATALOG:
            assert C.lookup("guest", name, 1).image == name

    def test_catalogue_is_sorted_and_complete(self):
        catalogue = C.catalogue()
        keys = [(c.kind, c.name, c.version) for c in catalogue]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_duplicate_registration_is_loud(self):
        existing = C.lookup("host", "lightvm", 1)
        with pytest.raises(C.DuplicateComponentError) as err:
            C.register(dataclasses.replace(existing))
        assert "immutable" in str(err.value)
        assert "bump the version" in str(err.value)

    def test_ref_round_trips_through_resolve(self):
        host = C.lookup("host", "lightvm-64core", 1)
        assert host.ref() == "lightvm-64core@1"
        assert C.resolve("host", host.ref(), "host") is host


class TestTypedErrors:
    def test_unpinned_reference_is_an_error_not_latest(self):
        with pytest.raises(C.ComponentVersionError) as err:
            C.resolve("guest", "daytime", "guest")
        assert err.value.field == "guest"
        assert "pins no version" in str(err.value)
        assert "daytime@<version>" in str(err.value)

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(C.UnknownComponentError) as err:
            C.resolve("traffic", "lumpy@1", "traffic")
        assert err.value.field == "traffic"
        assert "unknown traffic component 'lumpy'" in str(err.value)
        assert "boot-storm" in str(err.value)

    def test_missing_version_lists_available_versions(self):
        with pytest.raises(C.ComponentVersionError) as err:
            C.resolve("host", "lightvm@9", "host")
        assert "no version 9" in str(err.value)
        assert "(have: 1)" in str(err.value)

    def test_malformed_version_is_an_error(self):
        with pytest.raises(C.ComponentVersionError) as err:
            C.resolve("host", "lightvm@latest", "host")
        assert "malformed version 'latest'" in str(err.value)


class TestOverrides:
    def test_parameter_override_applies(self):
        host = C.resolve("host", {"ref": "xl@1", "pooled": False}, "host")
        assert isinstance(host, HostProfile)
        assert host.pooled is False
        # The registered component is untouched.
        assert C.lookup("host", "xl", 1).pooled is True

    def test_unknown_parameter_lists_overridable(self):
        with pytest.raises(C.ComponentOverrideError) as err:
            C.resolve("host", {"ref": "xl@1", "pool": 9}, "host")
        assert "no parameter 'pool'" in str(err.value)
        assert "pool_slack" in str(err.value)

    def test_reserved_keys_cannot_be_overridden(self):
        for key in ("name", "version", "kind"):
            with pytest.raises(C.ComponentOverrideError) as err:
                C.resolve("host", {"ref": "xl@1", key: "x"}, "host")
            assert "reserved key" in str(err.value)

    def test_type_mismatch_is_an_error(self):
        with pytest.raises(C.ComponentOverrideError) as err:
            C.resolve("host", {"ref": "xl@1", "pool_slack": "lots"},
                      "host")
        assert "expects int" in str(err.value)

    def test_mapping_without_ref_is_an_error(self):
        with pytest.raises(C.ComponentOverrideError) as err:
            C.resolve("host", {"pooled": False}, "host")
        assert "'ref' key" in str(err.value)


class TestBuildHooks:
    def test_guest_build_returns_catalog_image(self):
        from repro.guests import CATALOG
        guest = C.lookup("guest", "daytime", 1)
        assert guest.build() is CATALOG["daytime"]

    def test_container_guest_refuses_vm_build(self):
        docker = C.lookup("guest", "docker", 1)
        assert isinstance(docker, GuestProfile)
        with pytest.raises(ValueError):
            docker.build()

    def test_fault_profile_rate_zero_builds_none(self):
        none = C.lookup("faults", "none", 1)
        assert isinstance(none, FaultProfile)
        assert none.build(seed=3) is None

    def test_fault_profile_builds_seeded_plan(self):
        light = C.lookup("faults", "light", 1)
        plan = light.build(seed=3)
        assert plan is not None

    def test_host_build_pooled_prefills_shells(self):
        from repro.guests import CATALOG
        host = C.lookup("host", "lightvm", 1).build(
            count=4, image=CATALOG["daytime"])
        assert host.sim.now > 0.0  # warmup advanced the clock

    def test_host_build_unpooled_keeps_stock_defaults(self):
        from repro.guests import CATALOG
        profile = C.resolve("host", {"ref": "xl@1", "pooled": False},
                            "host")
        host = profile.build(count=4, image=CATALOG["daytime"])
        assert host.sim.now == 0.0  # no warmup, no pool pre-fill

    def test_describe_includes_all_params(self):
        record = C.lookup("traffic", "boot-storm", 1).describe()
        assert record["kind"] == "traffic"
        assert record["name"] == "boot-storm"
        assert record["version"] == 1
        assert isinstance(C.lookup("traffic", "boot-storm", 1),
                          TrafficPattern)
        assert "create_spacing_ms" in record
