"""Tests for the noxs module, control pages and sysctl device."""

import pytest

from repro.hypervisor import (DEV_SYSCTL, DEV_VIF, DomainState, Hypervisor,
                              STATE_CONNECTED, STATE_INITIALISING)
from repro.noxs import (CTRL_SIZE, ControlPageError, DeviceControlPage,
                        NoxsModule, SysctlBackend, SysctlError)
from repro.sim import Simulator


def make_platform():
    sim = Simulator()
    hv = Hypervisor(sim, memory_kb=1024 * 1024, total_cores=4,
                    dom0_cores=1, dom0_memory_kb=64 * 1024)
    return sim, hv, NoxsModule(sim, hv)


def run(sim, gen):
    def wrapper():
        result = yield from gen
        return result
    return sim.run(until=sim.process(wrapper()))


class TestControlPage:
    def test_initial_state(self):
        page = DeviceControlPage(0x1000, DEV_VIF)
        assert page.state == STATE_INITIALISING
        assert page.dev_type == DEV_VIF
        assert page.mtu == 1500
        assert len(page.raw()) == CTRL_SIZE

    def test_state_transitions(self):
        page = DeviceControlPage(0x1000, DEV_VIF)
        page.state = STATE_CONNECTED
        assert page.state == STATE_CONNECTED

    def test_invalid_state_rejected(self):
        page = DeviceControlPage(0x1000, DEV_VIF)
        with pytest.raises(ControlPageError):
            page.state = 99

    def test_mac_roundtrip(self):
        mac = b"\x00\x16\x3e\xaa\xbb\xcc"
        page = DeviceControlPage(0x1000, DEV_VIF, mac=mac)
        assert page.mac == mac

    def test_bad_mac_rejected(self):
        with pytest.raises(ControlPageError):
            DeviceControlPage(0x1000, DEV_VIF, mac=b"\x00")

    def test_ring_ref_and_features(self):
        page = DeviceControlPage(0x1000, DEV_VIF)
        page.ring_ref = 77
        page.feature_bits = 0b101
        assert page.ring_ref == 77
        assert page.feature_bits == 0b101
        assert page.mac == b"\x00" * 6  # untouched by sibling setters


class TestNoxsModule:
    def test_create_device_returns_complete_entry(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        assert entry.dev_type == DEV_VIF
        assert entry.backend_domid == 0
        assert entry.evtchn_port > 0
        assert entry.grant_ref > 0
        assert entry.grant_ref in [
            ref for (_d, ref) in hv.grants._entries]
        assert noxs.stats["devices_created"] == 1

    def test_create_device_takes_time(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        assert sim.now > 0

    def test_unsupported_type_rejected(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        with pytest.raises(ValueError):
            run(sim, noxs.ioctl_create_device(dom, 42))

    def test_write_devpage_records_entry(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        index = run(sim, noxs.write_devpage(dom, entry))
        assert dom.device_page.read(index).evtchn_port == entry.evtchn_port

    def test_destroy_device_releases_resources(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        assert len(noxs.control_pages) == 1
        run(sim, noxs.ioctl_destroy_device(dom, entry))
        assert len(noxs.control_pages) == 0
        assert hv.grants.count_for(0) == 0
        assert noxs.stats["devices_destroyed"] == 1

    def test_destroy_slower_than_create(self):
        """§6.2: noxs device destruction is the unoptimized path."""
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        create_time = sim.now
        run(sim, noxs.ioctl_destroy_device(dom, entry))
        destroy_time = sim.now - create_time
        assert destroy_time > create_time


class TestSysctl:
    def _with_sysctl(self):
        sim, hv, noxs = make_platform()
        sysctl = SysctlBackend(sim, hv, noxs)
        dom = hv.domctl_create()
        hv.devpage_create(dom)
        run(sim, sysctl.attach(dom))
        return sim, hv, sysctl, dom

    def test_attach_creates_sysctl_entry(self):
        _sim, _hv, _sysctl, dom = self._with_sysctl()
        entries = [e for _i, e in dom.device_page.entries()]
        assert any(e.dev_type == DEV_SYSCTL for e in entries)
        assert SysctlBackend.NOTE_KEY in dom.notes

    def test_suspend_transitions_domain(self):
        sim, hv, sysctl, dom = self._with_sysctl()
        hv.domctl_unpause(dom)
        run(sim, sysctl.request_suspend(dom))
        assert dom.state == DomainState.SUSPENDED

    def test_suspend_requires_running(self):
        sim, _hv, sysctl, dom = self._with_sysctl()
        with pytest.raises(Exception):
            run(sim, sysctl.request_suspend(dom))

    def test_resume_after_suspend(self):
        sim, hv, sysctl, dom = self._with_sysctl()
        hv.domctl_unpause(dom)
        run(sim, sysctl.request_suspend(dom))
        run(sim, sysctl.complete_resume(dom))
        assert dom.state == DomainState.RUNNING

    def test_suspend_without_sysctl_rejected(self):
        sim, hv, noxs = make_platform()
        sysctl = SysctlBackend(sim, hv, noxs)
        dom = hv.domctl_create()
        hv.domctl_unpause(dom)
        with pytest.raises(SysctlError):
            run(sim, sysctl.request_suspend(dom))

    def test_suspend_takes_milliseconds_not_seconds(self):
        sim, hv, sysctl, dom = self._with_sysctl()
        hv.domctl_unpause(dom)
        start = sim.now
        run(sim, sysctl.request_suspend(dom))
        assert sim.now - start < 10.0  # paper: ~30 ms for full save


class TestDataPathRings:
    def test_vif_gets_a_ring_pair(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        grant = hv.grants.entry(0, entry.grant_ref)
        page = noxs.control_pages[grant.frame]
        assert page.ring_ref == grant.frame
        assert grant.frame in noxs.rings

    def test_sysctl_has_no_data_path(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_SYSCTL))
        grant = hv.grants.entry(0, entry.grant_ref)
        assert grant.frame not in noxs.rings

    def test_destroy_releases_rings(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        run(sim, noxs.ioctl_destroy_device(dom, entry))
        assert not noxs.rings

    def test_ring_carries_traffic_end_to_end(self):
        sim, hv, noxs = make_platform()
        dom = hv.domctl_create()
        entry = run(sim, noxs.ioctl_create_device(dom, DEV_VIF))
        grant = hv.grants.entry(0, entry.grant_ref)
        pair = noxs.rings[grant.frame]
        # Front-end transmits; back-end consumes and responds.
        assert pair.requests.push({"pkt": 1}) is True
        request = pair.requests.pop()
        pair.responses.push({"status": "ok", "pkt": request["pkt"]})
        assert pair.responses.pop()["pkt"] == 1
